//! Pluggable event sinks and per-target level filtering.
//!
//! A sink receives already-filtered [`Event`]s through `&self`, so one
//! sink can be shared between the emitting layer and the caller that
//! later inspects what was collected (keep an `Arc` clone).

use crate::event::{Event, Level};
use crate::locked;
use std::collections::VecDeque;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Destination for structured events.
pub trait EventSink: Send + Sync {
    /// Whether the sink wants events for `target` at `level` at all.
    /// Used by the `event!` macro to skip field construction entirely;
    /// defaults to accepting everything.
    fn accepts(&self, target: &'static str, level: Level) -> bool {
        let _ = (target, level);
        true
    }

    /// Receives one event that passed filtering.
    fn record(&self, event: &Event);

    /// Flushes buffered output; a no-op for in-memory sinks.
    fn flush(&self) -> io::Result<()> {
        Ok(())
    }
}

/// Counting null sink: drops every event but counts them. The cheapest
/// enabled sink, used by the `obs-overhead` bench to price the emission
/// path itself.
#[derive(Debug, Default)]
pub struct NullSink {
    seen: AtomicU64,
}

impl NullSink {
    /// A fresh counting sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// How many events were recorded.
    pub fn events_seen(&self) -> u64 {
        self.seen.load(Ordering::SeqCst)
    }
}

impl EventSink for NullSink {
    fn record(&self, _event: &Event) {
        self.seen.fetch_add(1, Ordering::SeqCst);
    }
}

/// Bounded in-memory ring buffer keeping the most recent events.
#[derive(Debug)]
pub struct RingSink {
    cap: usize,
    buf: Mutex<VecDeque<Event>>,
}

impl RingSink {
    /// A ring holding at most `cap` events (the oldest are dropped).
    pub fn new(cap: usize) -> Self {
        RingSink {
            cap: cap.max(1),
            buf: Mutex::new(VecDeque::new()),
        }
    }

    /// Snapshot of the retained events, oldest first.
    pub fn snapshot(&self) -> Vec<Event> {
        locked(&self.buf).iter().cloned().collect()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        locked(&self.buf).len()
    }

    /// Whether the ring holds no events.
    pub fn is_empty(&self) -> bool {
        locked(&self.buf).is_empty()
    }
}

impl EventSink for RingSink {
    fn record(&self, event: &Event) {
        let mut buf = locked(&self.buf);
        if buf.len() == self.cap {
            buf.pop_front();
        }
        buf.push_back(event.clone());
    }
}

/// Writes one compact JSON object per line. Same seed ⇒ same events ⇒
/// byte-identical files, because [`Event::to_jsonl`] has a fixed key
/// order and timestamps are sim time.
pub struct JsonlSink {
    out: Mutex<BufWriter<File>>,
}

impl JsonlSink {
    /// Creates (truncates) `path` and returns a sink writing to it.
    pub fn create(path: &Path) -> io::Result<JsonlSink> {
        Ok(JsonlSink {
            out: Mutex::new(BufWriter::new(File::create(path)?)),
        })
    }
}

impl EventSink for JsonlSink {
    fn record(&self, event: &Event) {
        let mut out = locked(&self.out);
        // A failed write leaves the BufWriter in an error state that the
        // final flush() reports; record() itself must not panic (PA01).
        let _ = writeln!(out, "{}", event.to_jsonl());
    }

    fn flush(&self) -> io::Result<()> {
        locked(&self.out).flush()
    }
}

/// Per-target minimum-level filter: the longest matching target prefix
/// wins, falling back to the default level.
#[derive(Clone, Debug)]
pub struct Filter {
    default: Level,
    rules: Vec<(String, Level)>,
}

impl Filter {
    /// Passes everything (default: the observability artifacts are for
    /// offline analysis, so completeness beats volume).
    pub fn all() -> Filter {
        Filter::min(Level::Trace)
    }

    /// Passes events at `level` or above for every target.
    pub fn min(level: Level) -> Filter {
        Filter {
            default: level,
            rules: Vec::new(),
        }
    }

    /// Adds a per-target override: events whose target starts with
    /// `prefix` pass at `level` or above. Longest prefix wins.
    pub fn with_target(mut self, prefix: &str, level: Level) -> Filter {
        self.rules.push((prefix.to_string(), level));
        // Longest prefix first, ties broken lexicographically, so the
        // match below is order-independent of insertion.
        self.rules
            .sort_by(|a, b| b.0.len().cmp(&a.0.len()).then(a.0.cmp(&b.0)));
        self
    }

    /// Whether an event for `target` at `level` passes.
    pub fn allows(&self, target: &str, level: Level) -> bool {
        for (prefix, min) in &self.rules {
            if target.starts_with(prefix.as_str()) {
                return level >= *min;
            }
        }
        level >= self.default
    }
}

impl Default for Filter {
    fn default() -> Self {
        Filter::all()
    }
}

/// An event captured by a [`ShardBufferSink`], tagged with the canonical
/// scheduler key of the event handling that emitted it. Sorting tagged
/// events from all shards by `(time_us, origin, oseq, idx)` reproduces
/// the exact emission order of a single-threaded run, because that key
/// *is* the global dispatch order and `idx` numbers the emissions within
/// one handling.
#[derive(Clone, Debug)]
pub struct TaggedEvent {
    /// Simulation time of the handling that emitted the event.
    pub time_us: u64,
    /// Origin lane of the scheduler key being handled.
    pub origin: u32,
    /// Origin sequence of the scheduler key being handled.
    pub oseq: u32,
    /// Emission index within the handling (reset by `set_tag`).
    pub idx: u32,
    /// The captured event.
    pub event: Event,
}

impl TaggedEvent {
    /// The canonical merge key.
    pub fn key(&self) -> (u64, u32, u32, u32) {
        (self.time_us, self.origin, self.oseq, self.idx)
    }
}

struct ShardBuf {
    time_us: u64,
    origin: u32,
    oseq: u32,
    idx: u32,
    events: Vec<TaggedEvent>,
}

/// Per-shard event buffer for the parallel engine: worker threads record
/// into this sink (tagged with the scheduler key currently being
/// handled, via [`ShardBufferSink::set_tag`]); after the run, the
/// buffers of all shards are merged by key and replayed into the real
/// sink in the exact order a single-threaded run would have produced.
///
/// `accepts` delegates to the destination sink so filtering (and the
/// `event!` macro's skip-fields fast path) behaves identically to the
/// unsharded pipeline.
pub struct ShardBufferSink {
    dest: std::sync::Arc<dyn EventSink>,
    buf: Mutex<ShardBuf>,
}

impl ShardBufferSink {
    /// A buffer whose filtering mirrors `dest`.
    pub fn new(dest: std::sync::Arc<dyn EventSink>) -> Self {
        ShardBufferSink {
            dest,
            buf: Mutex::new(ShardBuf {
                time_us: 0,
                origin: 0,
                oseq: 0,
                idx: 0,
                events: Vec::new(),
            }),
        }
    }

    /// Sets the scheduler key for the event handling about to run and
    /// resets the per-handling emission index.
    pub fn set_tag(&self, time_us: u64, origin: u32, oseq: u32) {
        let mut b = locked(&self.buf);
        b.time_us = time_us;
        b.origin = origin;
        b.oseq = oseq;
        b.idx = 0;
    }

    /// Drains the captured events.
    pub fn take(&self) -> Vec<TaggedEvent> {
        std::mem::take(&mut locked(&self.buf).events)
    }
}

impl EventSink for ShardBufferSink {
    fn accepts(&self, target: &'static str, level: Level) -> bool {
        self.dest.accepts(target, level)
    }

    fn record(&self, event: &Event) {
        let mut b = locked(&self.buf);
        let tagged = TaggedEvent {
            time_us: b.time_us,
            origin: b.origin,
            oseq: b.oseq,
            idx: b.idx,
            event: event.clone(),
        };
        b.idx += 1;
        b.events.push(tagged);
    }
}

/// Merges per-shard buffers by canonical key and replays them into
/// `dest` — the single-threaded emission order, reconstructed.
pub fn replay_merged(mut buffers: Vec<Vec<TaggedEvent>>, dest: &dyn EventSink) {
    let mut all: Vec<TaggedEvent> = buffers.drain(..).flatten().collect();
    all.sort_by_key(TaggedEvent::key);
    for t in &all {
        dest.record(&t.event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netaware_sim::SimTime;

    fn ev(target: &'static str, level: Level, n: u64) -> Event {
        Event {
            time: SimTime::from_us(n),
            target,
            level,
            fields: vec![("n", crate::FieldValue::U64(n))],
        }
    }

    #[test]
    fn null_sink_counts() {
        let s = NullSink::new();
        for i in 0..5 {
            s.record(&ev("swarm.tick", Level::Debug, i));
        }
        assert_eq!(s.events_seen(), 5);
    }

    #[test]
    fn ring_sink_keeps_most_recent() {
        let s = RingSink::new(3);
        for i in 0..10 {
            s.record(&ev("swarm.tick", Level::Debug, i));
        }
        let kept = s.snapshot();
        assert_eq!(kept.len(), 3);
        assert_eq!(kept[0].time, SimTime::from_us(7));
        assert_eq!(kept[2].time, SimTime::from_us(9));
        assert!(!s.is_empty());
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn jsonl_sink_writes_one_line_per_event() {
        let path = std::env::temp_dir().join(format!(
            "netaware_obs_sink_test_{}.jsonl",
            std::process::id()
        ));
        let s = JsonlSink::create(&path).expect("create");
        s.record(&ev("swarm.tick", Level::Debug, 1));
        s.record(&ev("pass.flow", Level::Info, 2));
        s.flush().expect("flush");
        let text = std::fs::read_to_string(&path).expect("read back");
        let _ = std::fs::remove_file(&path);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains(r#""target":"swarm.tick""#));
        assert!(lines[1].contains(r#""target":"pass.flow""#));
    }

    #[test]
    fn filter_longest_prefix_wins() {
        let f = Filter::min(Level::Info)
            .with_target("swarm", Level::Warn)
            .with_target("swarm.chunk_sched", Level::Trace);
        assert!(f.allows("swarm.chunk_sched", Level::Debug));
        assert!(!f.allows("swarm.handshake", Level::Info));
        assert!(f.allows("swarm.handshake", Level::Error));
        assert!(f.allows("pass.flow", Level::Info));
        assert!(!f.allows("pass.flow", Level::Debug));
    }

    #[test]
    fn default_filter_accepts_everything() {
        let f = Filter::default();
        assert!(f.allows("anything.at", Level::Trace));
    }

    #[test]
    fn shard_buffer_tags_and_replays_in_key_order() {
        let dest = std::sync::Arc::new(RingSink::new(16));
        // Two shards emitting interleaved handlings, out of global order.
        let a = ShardBufferSink::new(dest.clone());
        let b = ShardBufferSink::new(dest.clone());
        b.set_tag(200, 5, 0);
        b.record(&ev("swarm.tick", Level::Debug, 200));
        a.set_tag(100, 3, 1);
        a.record(&ev("swarm.tick", Level::Debug, 100));
        a.record(&ev("swarm.tick", Level::Debug, 101)); // idx 1, same handling
        a.set_tag(200, 2, 0); // earlier origin than shard b's at t=200
        a.record(&ev("swarm.tick", Level::Debug, 202));
        assert_eq!(dest.len(), 0, "buffered events must not reach dest yet");
        replay_merged(vec![a.take(), b.take()], dest.as_ref());
        let got: Vec<u64> = dest
            .snapshot()
            .iter()
            .map(|e| e.time.as_us())
            .collect();
        assert_eq!(got, vec![100, 101, 202, 200]);
        assert!(a.take().is_empty(), "take drains the buffer");
    }

    #[test]
    fn shard_buffer_delegates_accepts() {
        struct Picky;
        impl EventSink for Picky {
            fn accepts(&self, target: &'static str, _level: Level) -> bool {
                target.starts_with("swarm")
            }
            fn record(&self, _event: &Event) {}
        }
        let s = ShardBufferSink::new(std::sync::Arc::new(Picky));
        assert!(s.accepts("swarm.tick", Level::Debug));
        assert!(!s.accepts("pass.flow", Level::Error));
    }
}

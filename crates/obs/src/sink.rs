//! Pluggable event sinks and per-target level filtering.
//!
//! A sink receives already-filtered [`Event`]s through `&self`, so one
//! sink can be shared between the emitting layer and the caller that
//! later inspects what was collected (keep an `Arc` clone).

use crate::event::{Event, Level};
use crate::locked;
use std::collections::VecDeque;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Destination for structured events.
pub trait EventSink: Send + Sync {
    /// Whether the sink wants events for `target` at `level` at all.
    /// Used by the `event!` macro to skip field construction entirely;
    /// defaults to accepting everything.
    fn accepts(&self, target: &'static str, level: Level) -> bool {
        let _ = (target, level);
        true
    }

    /// Receives one event that passed filtering.
    fn record(&self, event: &Event);

    /// Flushes buffered output; a no-op for in-memory sinks.
    fn flush(&self) -> io::Result<()> {
        Ok(())
    }
}

/// Counting null sink: drops every event but counts them. The cheapest
/// enabled sink, used by the `obs-overhead` bench to price the emission
/// path itself.
#[derive(Debug, Default)]
pub struct NullSink {
    seen: AtomicU64,
}

impl NullSink {
    /// A fresh counting sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// How many events were recorded.
    pub fn events_seen(&self) -> u64 {
        self.seen.load(Ordering::SeqCst)
    }
}

impl EventSink for NullSink {
    fn record(&self, _event: &Event) {
        self.seen.fetch_add(1, Ordering::SeqCst);
    }
}

/// Bounded in-memory ring buffer keeping the most recent events.
#[derive(Debug)]
pub struct RingSink {
    cap: usize,
    buf: Mutex<VecDeque<Event>>,
}

impl RingSink {
    /// A ring holding at most `cap` events (the oldest are dropped).
    pub fn new(cap: usize) -> Self {
        RingSink {
            cap: cap.max(1),
            buf: Mutex::new(VecDeque::new()),
        }
    }

    /// Snapshot of the retained events, oldest first.
    pub fn snapshot(&self) -> Vec<Event> {
        locked(&self.buf).iter().cloned().collect()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        locked(&self.buf).len()
    }

    /// Whether the ring holds no events.
    pub fn is_empty(&self) -> bool {
        locked(&self.buf).is_empty()
    }
}

impl EventSink for RingSink {
    fn record(&self, event: &Event) {
        let mut buf = locked(&self.buf);
        if buf.len() == self.cap {
            buf.pop_front();
        }
        buf.push_back(event.clone());
    }
}

/// Writes one compact JSON object per line. Same seed ⇒ same events ⇒
/// byte-identical files, because [`Event::to_jsonl`] has a fixed key
/// order and timestamps are sim time.
pub struct JsonlSink {
    out: Mutex<BufWriter<File>>,
}

impl JsonlSink {
    /// Creates (truncates) `path` and returns a sink writing to it.
    pub fn create(path: &Path) -> io::Result<JsonlSink> {
        Ok(JsonlSink {
            out: Mutex::new(BufWriter::new(File::create(path)?)),
        })
    }
}

impl EventSink for JsonlSink {
    fn record(&self, event: &Event) {
        let mut out = locked(&self.out);
        // A failed write leaves the BufWriter in an error state that the
        // final flush() reports; record() itself must not panic (PA01).
        let _ = writeln!(out, "{}", event.to_jsonl());
    }

    fn flush(&self) -> io::Result<()> {
        locked(&self.out).flush()
    }
}

/// Per-target minimum-level filter: the longest matching target prefix
/// wins, falling back to the default level.
#[derive(Clone, Debug)]
pub struct Filter {
    default: Level,
    rules: Vec<(String, Level)>,
}

impl Filter {
    /// Passes everything (default: the observability artifacts are for
    /// offline analysis, so completeness beats volume).
    pub fn all() -> Filter {
        Filter::min(Level::Trace)
    }

    /// Passes events at `level` or above for every target.
    pub fn min(level: Level) -> Filter {
        Filter {
            default: level,
            rules: Vec::new(),
        }
    }

    /// Adds a per-target override: events whose target starts with
    /// `prefix` pass at `level` or above. Longest prefix wins.
    pub fn with_target(mut self, prefix: &str, level: Level) -> Filter {
        self.rules.push((prefix.to_string(), level));
        // Longest prefix first, ties broken lexicographically, so the
        // match below is order-independent of insertion.
        self.rules
            .sort_by(|a, b| b.0.len().cmp(&a.0.len()).then(a.0.cmp(&b.0)));
        self
    }

    /// Whether an event for `target` at `level` passes.
    pub fn allows(&self, target: &str, level: Level) -> bool {
        for (prefix, min) in &self.rules {
            if target.starts_with(prefix.as_str()) {
                return level >= *min;
            }
        }
        level >= self.default
    }
}

impl Default for Filter {
    fn default() -> Self {
        Filter::all()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netaware_sim::SimTime;

    fn ev(target: &'static str, level: Level, n: u64) -> Event {
        Event {
            time: SimTime::from_us(n),
            target,
            level,
            fields: vec![("n", crate::FieldValue::U64(n))],
        }
    }

    #[test]
    fn null_sink_counts() {
        let s = NullSink::new();
        for i in 0..5 {
            s.record(&ev("swarm.tick", Level::Debug, i));
        }
        assert_eq!(s.events_seen(), 5);
    }

    #[test]
    fn ring_sink_keeps_most_recent() {
        let s = RingSink::new(3);
        for i in 0..10 {
            s.record(&ev("swarm.tick", Level::Debug, i));
        }
        let kept = s.snapshot();
        assert_eq!(kept.len(), 3);
        assert_eq!(kept[0].time, SimTime::from_us(7));
        assert_eq!(kept[2].time, SimTime::from_us(9));
        assert!(!s.is_empty());
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn jsonl_sink_writes_one_line_per_event() {
        let path = std::env::temp_dir().join(format!(
            "netaware_obs_sink_test_{}.jsonl",
            std::process::id()
        ));
        let s = JsonlSink::create(&path).expect("create");
        s.record(&ev("swarm.tick", Level::Debug, 1));
        s.record(&ev("pass.flow", Level::Info, 2));
        s.flush().expect("flush");
        let text = std::fs::read_to_string(&path).expect("read back");
        let _ = std::fs::remove_file(&path);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains(r#""target":"swarm.tick""#));
        assert!(lines[1].contains(r#""target":"pass.flow""#));
    }

    #[test]
    fn filter_longest_prefix_wins() {
        let f = Filter::min(Level::Info)
            .with_target("swarm", Level::Warn)
            .with_target("swarm.chunk_sched", Level::Trace);
        assert!(f.allows("swarm.chunk_sched", Level::Debug));
        assert!(!f.allows("swarm.handshake", Level::Info));
        assert!(f.allows("swarm.handshake", Level::Error));
        assert!(f.allows("pass.flow", Level::Info));
        assert!(!f.allows("pass.flow", Level::Debug));
    }

    #[test]
    fn default_filter_accepts_everything() {
        let f = Filter::default();
        assert!(f.allows("anything.at", Level::Trace));
    }
}

//! Global counting allocator for heap telemetry.
//!
//! [`CountingAlloc`] wraps the system allocator and keeps four global
//! tallies: allocation calls, bytes requested, bytes currently live, and
//! the high-water mark of live bytes. Binaries opt in with
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: netaware_obs::alloc::CountingAlloc = netaware_obs::alloc::CountingAlloc;
//! ```
//!
//! When no binary installs it every counter reads zero, so library code
//! (the profiler above all) can sample [`snapshot`] unconditionally: the
//! deltas just collapse to zero. The counters are process-global and
//! deliberately *not* part of any deterministic artifact — allocation
//! counts depend on thread scheduling (rayon workers grow their pools
//! lazily) and on the allocator itself, so perf reports list them among
//! the masked wall-clock-like fields (see `profile::MASKED_FIELDS`).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);
static LIVE_BYTES: AtomicU64 = AtomicU64::new(0);
static PEAK_BYTES: AtomicU64 = AtomicU64::new(0);

/// The counting wrapper around [`System`]. Zero-sized; install with
/// `#[global_allocator]`.
pub struct CountingAlloc;

#[inline]
fn on_alloc(bytes: u64) {
    ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
    ALLOC_BYTES.fetch_add(bytes, Ordering::Relaxed);
    let live = LIVE_BYTES.fetch_add(bytes, Ordering::Relaxed) + bytes;
    PEAK_BYTES.fetch_max(live, Ordering::Relaxed);
}

#[inline]
fn on_dealloc(bytes: u64) {
    // `fetch_sub` would wrap if a dealloc ever outran the installs —
    // impossible for a `#[global_allocator]` (it sees the whole process
    // lifetime), but saturate defensively anyway.
    let mut live = LIVE_BYTES.load(Ordering::Relaxed);
    loop {
        let next = live.saturating_sub(bytes);
        match LIVE_BYTES.compare_exchange_weak(live, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => break,
            Err(seen) => live = seen,
        }
    }
}

// SAFETY: defers every allocation verbatim to `System`; the bookkeeping
// is side-effect-only atomics.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            on_alloc(layout.size() as u64);
        }
        p
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc_zeroed(layout);
        if !p.is_null() {
            on_alloc(layout.size() as u64);
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        on_dealloc(layout.size() as u64);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        if !p.is_null() {
            on_dealloc(layout.size() as u64);
            on_alloc(new_size as u64);
        }
        p
    }
}

/// Point-in-time view of the global allocation counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AllocSnapshot {
    /// Cumulative allocation calls since process start.
    pub allocs: u64,
    /// Cumulative bytes requested since process start.
    pub bytes: u64,
    /// Bytes currently live.
    pub live_bytes: u64,
    /// High-water mark of live bytes (since start or last
    /// [`reset_peak`]).
    pub peak_bytes: u64,
}

/// Reads all four counters (zeros when [`CountingAlloc`] is not the
/// process allocator).
pub fn snapshot() -> AllocSnapshot {
    AllocSnapshot {
        allocs: ALLOC_CALLS.load(Ordering::Relaxed),
        bytes: ALLOC_BYTES.load(Ordering::Relaxed),
        live_bytes: LIVE_BYTES.load(Ordering::Relaxed),
        peak_bytes: PEAK_BYTES.load(Ordering::Relaxed),
    }
}

/// Whether the counting allocator appears to be installed (a process
/// that has made it past `main` has certainly allocated).
pub fn is_counting() -> bool {
    ALLOC_CALLS.load(Ordering::Relaxed) != 0
}

/// Restarts the peak tracker from the current live size, so a phase can
/// measure its own high-water mark.
pub fn reset_peak() {
    PEAK_BYTES.store(LIVE_BYTES.load(Ordering::Relaxed), Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    // The test binary does not install the allocator, so the counters
    // move only when the bookkeeping functions are fed directly. One
    // test (not several) because the tallies are process-global.
    #[test]
    fn bookkeeping_tracks_live_peak_and_saturates() {
        let before = snapshot();
        on_alloc(1024);
        on_alloc(512);
        on_dealloc(512);
        let after = snapshot();
        assert_eq!(after.allocs, before.allocs + 2);
        assert_eq!(after.bytes, before.bytes + 1536);
        assert!(after.peak_bytes >= before.live_bytes + 1536);
        assert_eq!(after.live_bytes, before.live_bytes + 1024);

        // A dealloc larger than everything live saturates at zero
        // instead of wrapping.
        on_dealloc(u64::MAX);
        assert_eq!(snapshot().live_bytes, 0);
    }
}

//! # netaware-faults — deterministic fault-injection plans
//!
//! The paper measured PPLive/SopCast/TVAnts on *real* networks, where
//! packet loss, latency variation and peer churn are the norm. This
//! crate is the policy layer of the fault-injection subsystem: a
//! [`FaultPlan`] describes *which* impairments an experiment runs under,
//! serialises to/from JSON (CLI `run --faults FILE`), and compiles into
//! the mechanism types of `netaware-sim` ([`netaware_sim::LinkFaults`])
//! that the protocol layer drives per packet.
//!
//! ## Determinism contract
//!
//! A plan contains no randomness — it is pure configuration. All fault
//! draws happen downstream in dedicated [`netaware_sim::DetRng`] streams
//! (`"fault.link"` per probe, `"fault.churn"` for the arrival/departure
//! process), so enabling faults never perturbs protocol streams, and a
//! [`FaultPlan::is_noop`] plan injects nothing and consumes **zero**
//! draws: runs with a disabled plan are byte-identical to runs built
//! before the fault layer existed.

#![warn(missing_docs)]

pub mod session;

pub use session::{Diurnal, FlashCrowd, SessionLaw, SessionModel, Zapping};

use netaware_sim::LinkFaultParams;
use serde::{Deserialize, Serialize};

/// Link-level impairments applied to every probe access link, both
/// directions. Mirrors [`netaware_sim::LinkFaultParams`], plus serde.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct LinkFaultPlan {
    /// Independent per-packet drop probability, `0.0..=1.0`.
    pub loss: f64,
    /// Maximum extra one-way delay per packet, µs (uniform).
    pub jitter_us: u64,
    /// Transient-outage arrival rate while the link is up, Hz.
    pub outage_rate_hz: f64,
    /// Mean outage duration, µs (exponential).
    pub outage_mean_us: u64,
}

impl LinkFaultPlan {
    /// `true` when no link impairment is configured.
    pub fn is_noop(&self) -> bool {
        self.params().is_noop()
    }

    /// Compiles into the sim-layer mechanism parameters.
    pub fn params(&self) -> LinkFaultParams {
        LinkFaultParams {
            loss: self.loss,
            jitter_us: self.jitter_us,
            outage_rate_hz: self.outage_rate_hz,
            outage_mean_us: self.outage_mean_us,
        }
    }
}

/// One scheduled tracker outage: while it lasts, probes cannot discover
/// new neighbors (the tracker/rendezvous is unreachable), so departed
/// peers cannot be replaced until the window closes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrackerOutage {
    /// Window start, µs since experiment start.
    pub start_us: u64,
    /// Window length, µs.
    pub duration_us: u64,
}

impl TrackerOutage {
    /// `true` while `now_us` falls inside the window.
    pub fn covers(&self, now_us: u64) -> bool {
        now_us >= self.start_us && now_us < self.start_us.saturating_add(self.duration_us)
    }
}

/// External-peer churn: seeded departure/arrival renewal processes.
///
/// Only *external* peers churn — the probes are the paper's vantage
/// points (machines the NAPA-WINE partners kept running for the whole
/// experiment), and the source never leaves. Each external's online
/// session lasts `Exp(session_mean_us)`, after which it crashes
/// mid-whatever-it-was-doing (pending requests on it are re-queued by
/// the requesters), stays away for `Exp(offline_mean_us)`, and rejoins.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ChurnPlan {
    /// Mean online session length of an external peer, µs.
    pub session_mean_us: u64,
    /// Mean offline period before the peer rejoins, µs.
    pub offline_mean_us: u64,
    /// Fraction of externals that start the experiment offline,
    /// `0.0..=1.0` (they arrive after an `Exp(offline_mean_us)` delay).
    pub initial_offline: f64,
    /// Scheduled tracker-outage windows (discovery blackouts).
    pub tracker_outages: Vec<TrackerOutage>,
}

impl ChurnPlan {
    /// The default preset behind the CLI `--churn` flag: 45 s mean
    /// sessions, 20 s mean offline periods — heavy churn at test
    /// time-scales, comparable to the short heavy-tailed lifetimes
    /// session-level P2P-TV studies report once scaled to experiment
    /// duration.
    pub fn preset() -> Self {
        ChurnPlan {
            session_mean_us: 45_000_000,
            offline_mean_us: 20_000_000,
            initial_offline: 0.0,
            tracker_outages: Vec::new(),
        }
    }

    /// `true` while some configured tracker outage covers `now_us`.
    pub fn tracker_down(&self, now_us: u64) -> bool {
        self.tracker_outages.iter().any(|w| w.covers(now_us))
    }
}

/// A complete fault-injection plan for one experiment.
///
/// The default plan is a no-op: no link faults, no churn. JSON schema
/// (see [`FaultPlan::example_json`] for a filled-in template):
///
/// ```json
/// {
///   "link": {"loss": 0.05, "jitter_us": 3000,
///            "outage_rate_hz": 0.02, "outage_mean_us": 2000000},
///   "churn": {"session_mean_us": 45000000, "offline_mean_us": 20000000,
///             "initial_offline": 0.0,
///             "tracker_outages": [{"start_us": 10000000,
///                                  "duration_us": 5000000}]},
///   "session": {"law": {"Pareto": [1.5]},
///               "diurnal": {"period_us": 60000000, "amplitude": 0.6,
///                           "phase_us": 0},
///               "flash_crowd": {"at_us": 8000000, "ramp_us": 2000000},
///               "zapping": {"prob": 0.3, "visit_mean_us": 5000000}}
/// }
/// ```
///
/// `session` is optional (absent in pre-session plans); it reshapes the
/// churn renewal process and therefore requires `churn` to be set when
/// any of its axes are active.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Link impairments on probe access links.
    pub link: LinkFaultPlan,
    /// External-peer churn; `None` disables churn entirely.
    pub churn: Option<ChurnPlan>,
    /// Empirical session model layered on `churn`; `None` (or a default
    /// model) keeps the legacy exponential draws byte-identical.
    pub session: Option<SessionModel>,
}

impl FaultPlan {
    /// The no-op plan (same as `Default`): nothing is injected and no
    /// fault stream is ever consulted.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Builds a plan from CLI-style shorthand flags. `None`/`false`
    /// leave the corresponding dimension untouched.
    pub fn from_flags(loss: Option<f64>, jitter_us: Option<u64>, churn: bool) -> Self {
        FaultPlan {
            link: LinkFaultPlan {
                loss: loss.unwrap_or(0.0),
                jitter_us: jitter_us.unwrap_or(0),
                ..LinkFaultPlan::default()
            },
            churn: churn.then(ChurnPlan::preset),
            session: None,
        }
    }

    /// `true` when the plan injects nothing (fault machinery must then
    /// be skipped entirely, per the determinism contract).
    pub fn is_noop(&self) -> bool {
        self.link.is_noop() && self.churn.is_none()
    }

    /// Validates parameter ranges, returning the first problem found.
    pub fn validate(&self) -> Result<(), String> {
        let l = &self.link;
        if !(0.0..=1.0).contains(&l.loss) {
            return Err(format!("link.loss {} outside 0..=1", l.loss));
        }
        if l.outage_rate_hz < 0.0 || !l.outage_rate_hz.is_finite() {
            return Err(format!("link.outage_rate_hz {} invalid", l.outage_rate_hz));
        }
        if l.outage_rate_hz > 0.0 && l.outage_mean_us == 0 {
            return Err("link.outage_rate_hz set but outage_mean_us is 0".into());
        }
        if let Some(c) = &self.churn {
            if c.session_mean_us == 0 {
                return Err("churn.session_mean_us must be > 0".into());
            }
            if c.offline_mean_us == 0 {
                return Err("churn.offline_mean_us must be > 0".into());
            }
            if !(0.0..=1.0).contains(&c.initial_offline) {
                return Err(format!(
                    "churn.initial_offline {} outside 0..=1",
                    c.initial_offline
                ));
            }
        }
        if let Some(s) = &self.session {
            s.validate()?;
            if !s.is_noop() && self.churn.is_none() {
                return Err("session model set but churn is null (nothing to reshape)".into());
            }
        }
        Ok(())
    }

    /// Parses and validates a plan from JSON.
    pub fn from_json(s: &str) -> Result<Self, String> {
        let plan: FaultPlan = serde_json::from_str(s).map_err(|e| e.to_string())?;
        plan.validate()?;
        Ok(plan)
    }

    /// Serialises the plan to pretty-printed JSON. A validated plan
    /// always serialises (the empty-string fallback covers only
    /// non-finite floats, which `validate` rejects).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).unwrap_or_default()
    }

    /// A filled-in plan template users can copy for `run --faults FILE`.
    pub fn example_json() -> String {
        FaultPlan {
            link: LinkFaultPlan {
                loss: 0.05,
                jitter_us: 3_000,
                outage_rate_hz: 0.02,
                outage_mean_us: 2_000_000,
            },
            churn: Some(ChurnPlan {
                session_mean_us: 45_000_000,
                offline_mean_us: 20_000_000,
                initial_offline: 0.0,
                tracker_outages: vec![TrackerOutage {
                    start_us: 10_000_000,
                    duration_us: 5_000_000,
                }],
            }),
            session: Some(SessionModel::flashcrowd_preset()),
        }
        .to_json()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_noop() {
        assert!(FaultPlan::none().is_noop());
        assert!(FaultPlan::default().validate().is_ok());
    }

    #[test]
    fn flags_build_the_expected_plan() {
        let p = FaultPlan::from_flags(Some(0.05), None, true);
        assert!(!p.is_noop());
        assert_eq!(p.link.loss, 0.05);
        assert_eq!(p.link.jitter_us, 0);
        assert_eq!(p.churn, Some(ChurnPlan::preset()));
        assert!(FaultPlan::from_flags(None, None, false).is_noop());
    }

    #[test]
    fn json_round_trip_preserves_the_plan() {
        let plan = FaultPlan::from_json(&FaultPlan::example_json()).expect("example parses");
        assert!(!plan.is_noop());
        let again = FaultPlan::from_json(&plan.to_json()).expect("round-trip parses");
        assert_eq!(plan, again);
        assert_eq!(plan.link.loss, 0.05);
        let churn = plan.churn.expect("example has churn");
        assert_eq!(churn.tracker_outages.len(), 1);
        assert!(churn.tracker_down(12_000_000));
        assert!(!churn.tracker_down(16_000_000));
    }

    #[test]
    fn validation_rejects_bad_ranges() {
        let mut p = FaultPlan::none();
        p.link.loss = 1.5;
        assert!(p.validate().is_err());
        p.link.loss = 0.0;
        p.link.outage_rate_hz = 1.0; // outage_mean_us still 0
        assert!(p.validate().is_err());
        p.link.outage_rate_hz = 0.0;
        p.churn = Some(ChurnPlan {
            session_mean_us: 0,
            ..ChurnPlan::preset()
        });
        assert!(p.validate().is_err());
    }

    #[test]
    fn session_model_requires_churn() {
        let mut p = FaultPlan::none();
        p.session = Some(SessionModel::flashcrowd_preset());
        assert!(p.validate().is_err());
        p.churn = Some(ChurnPlan::preset());
        assert!(p.validate().is_ok());
        // A default (no-op) model is allowed without churn — it changes
        // nothing, so old plans with an empty object keep parsing.
        let q = FaultPlan {
            session: Some(SessionModel::default()),
            ..FaultPlan::none()
        };
        assert!(q.validate().is_ok());
    }

    #[test]
    fn pre_session_json_still_parses() {
        let json = r#"{"link": {"loss": 0.01, "jitter_us": 0,
                                "outage_rate_hz": 0.0, "outage_mean_us": 0},
                       "churn": null}"#;
        let plan = FaultPlan::from_json(json).expect("old schema parses");
        assert!(plan.session.is_none());
    }

    #[test]
    fn tracker_outage_window_is_half_open() {
        let w = TrackerOutage {
            start_us: 100,
            duration_us: 50,
        };
        assert!(!w.covers(99));
        assert!(w.covers(100));
        assert!(w.covers(149));
        assert!(!w.covers(150));
    }
}

//! Empirically-shaped session models, layered on the churn plan.
//!
//! Session-level studies of P2P television (Biernacki & Krieger,
//! "Session Level Analysis of P2P Television Traces"; Silverston &
//! Fourmaux's multi-application comparison) found the exponential
//! session lengths classic churn models assume are wrong in practice:
//! observed sessions are **heavy-tailed** (most viewers zap away within
//! a minute, a few watch for hours), arrival intensity follows a
//! **diurnal** cycle, popular events trigger **flash crowds**, and
//! **channel zapping** injects a steady stream of very short visits.
//!
//! A [`SessionModel`] reshapes the churn process of a
//! [`ChurnPlan`](crate::ChurnPlan) along exactly those four axes. It is
//! pure configuration: all draws happen on the churn process's dedicated
//! `"fault.churn"` stream via the methods here, and the **default
//! (empty) model reproduces the legacy exponential draws bit-for-bit**,
//! consuming the same draws in the same order — runs with a no-op model
//! are byte-identical to model-free runs.

use netaware_sim::DetRng;
use serde::{Deserialize, Serialize};

/// The law an online session length is drawn from. Every law is
/// mean-matched to the churn plan's `session_mean_us`, so swapping laws
/// changes the *shape* of the session distribution, not the offered
/// load.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum SessionLaw {
    /// Exponential — the legacy churn law (same draws as no model).
    Exp,
    /// Pareto with the given shape α (must be > 1 so the mean exists);
    /// the scale is mean-matched: `x_m = mean·(α−1)/α`. Heavy-tailed —
    /// the empirical P2P-TV session shape.
    Pareto(f64),
    /// Lognormal with the given σ (> 0); `μ = ln(mean) − σ²/2` keeps
    /// the mean matched.
    LogNormal(f64),
}

/// Diurnal arrival-intensity envelope: offline periods shrink when the
/// audience is "awake" and stretch when it sleeps, so the online
/// population follows a daily (or, at test time-scales, compressed)
/// cycle. The envelope `1 + a·sin(2π(t+φ)/T)` integrates to the
/// configured mean rate over a full period.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Diurnal {
    /// Cycle length, µs (a day in the field; seconds in tests).
    pub period_us: u64,
    /// Relative swing `a` in `[0, 1)`: 0 is flat, 0.8 means peak
    /// intensity is 9× the trough.
    pub amplitude: f64,
    /// Phase offset φ, µs (shifts where the peak falls).
    pub phase_us: u64,
}

impl Diurnal {
    /// The intensity envelope at `now_us` (mean 1 over a period).
    pub fn intensity(&self, now_us: u64) -> f64 {
        let t = (now_us.wrapping_add(self.phase_us) % self.period_us.max(1)) as f64
            / self.period_us.max(1) as f64;
        1.0 + self.amplitude * (std::f64::consts::TAU * t).sin()
    }
}

/// A flash-crowd burst: every re-arrival that would straddle `at_us`
/// (offline when the event starts, due back after it) is pulled into
/// the `[at_us, at_us + ramp_us]` window instead — the "everyone tunes
/// in for kick-off" audience spike.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct FlashCrowd {
    /// Event start, µs since experiment start.
    pub at_us: u64,
    /// Arrival ramp width after the event start, µs.
    pub ramp_us: u64,
}

/// Channel-zapping renewal: with probability `prob`, a session is a
/// short exploratory visit (mean `visit_mean_us`) instead of a draw
/// from the session law — the two-population mix session-level traces
/// show (zappers vs viewers).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Zapping {
    /// Probability that a session is a zap visit, `0.0..=1.0`.
    pub prob: f64,
    /// Mean zap-visit length, µs (exponential).
    pub visit_mean_us: u64,
}

/// Cap on heavy-tailed session draws, as a multiple of the configured
/// mean: keeps a single Pareto tail sample from exceeding any plausible
/// experiment duration while leaving the measurable CCDF untouched.
const TAIL_CAP_FACTOR: f64 = 1e4;

/// An empirical session model: optional reshaping along four axes, all
/// composing with one [`ChurnPlan`](crate::ChurnPlan). The default
/// (every axis `None`) is a no-op that reproduces the legacy
/// exponential churn draws bit-for-bit.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct SessionModel {
    /// Session-length law; `None` keeps the legacy exponential.
    pub law: Option<SessionLaw>,
    /// Diurnal arrival-intensity envelope.
    pub diurnal: Option<Diurnal>,
    /// Flash-crowd arrival burst.
    pub flash_crowd: Option<FlashCrowd>,
    /// Channel-zapping short-visit mix.
    pub zapping: Option<Zapping>,
}

impl SessionModel {
    /// `true` when the model reshapes nothing (legacy churn draws,
    /// byte-identical to a model-free run).
    pub fn is_noop(&self) -> bool {
        matches!(self.law, None | Some(SessionLaw::Exp))
            && self.diurnal.is_none()
            && self.flash_crowd.is_none()
            && self.zapping.is_none()
    }

    /// Validates parameter ranges, returning the first problem found.
    pub fn validate(&self) -> Result<(), String> {
        match self.law {
            Some(SessionLaw::Pareto(a)) if !(a > 1.0 && a.is_finite()) => {
                return Err(format!("session.law Pareto shape {a} must be > 1"));
            }
            Some(SessionLaw::LogNormal(s)) if !(s > 0.0 && s.is_finite()) => {
                return Err(format!("session.law LogNormal sigma {s} must be > 0"));
            }
            _ => {}
        }
        if let Some(d) = &self.diurnal {
            if d.period_us == 0 {
                return Err("session.diurnal.period_us must be > 0".into());
            }
            if !(0.0..1.0).contains(&d.amplitude) {
                return Err(format!(
                    "session.diurnal.amplitude {} outside 0..1",
                    d.amplitude
                ));
            }
        }
        if let Some(z) = &self.zapping {
            if !(0.0..=1.0).contains(&z.prob) {
                return Err(format!("session.zapping.prob {} outside 0..=1", z.prob));
            }
            if z.prob > 0.0 && z.visit_mean_us == 0 {
                return Err("session.zapping.visit_mean_us must be > 0".into());
            }
        }
        Ok(())
    }

    /// The arrival-intensity envelope at `now_us` (1.0 without a
    /// diurnal axis; integrates to 1 over a period with one).
    pub fn intensity(&self, now_us: u64) -> f64 {
        self.diurnal.map_or(1.0, |d| d.intensity(now_us))
    }

    /// Draws one online session length, µs (≥ 1), mean-matched to
    /// `mean_us`. With no law and no zapping this is exactly the legacy
    /// draw `Exp(mean_us)` — same stream position, same value.
    pub fn draw_session_us(&self, rng: &mut DetRng, mean_us: u64) -> u64 {
        if let Some(z) = &self.zapping {
            if z.prob > 0.0 && rng.chance(z.prob) {
                return (rng.exp(z.visit_mean_us as f64) as u64).max(1);
            }
        }
        let mean = mean_us as f64;
        let v = match self.law {
            None | Some(SessionLaw::Exp) => rng.exp(mean),
            Some(SessionLaw::Pareto(shape)) => {
                let scale = mean * (shape - 1.0) / shape;
                rng.pareto(scale, shape, mean * TAIL_CAP_FACTOR)
            }
            Some(SessionLaw::LogNormal(sigma)) => {
                // Box–Muller from two uniform draws; μ mean-matches.
                let u1 = rng.range(f64::MIN_POSITIVE..1.0);
                let u2 = rng.unit();
                let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
                let mu = mean.ln() - sigma * sigma / 2.0;
                (mu + sigma * z).exp()
            }
        };
        (v as u64).max(1)
    }

    /// Computes the absolute re-arrival time of a peer going offline at
    /// `now_us`: an exponential offline period whose mean shrinks with
    /// the diurnal intensity, re-timed into the flash-crowd ramp when
    /// the draw straddles the event. Without a diurnal or flash axis
    /// this is exactly the legacy draw `now + Exp(offline_mean_us)`.
    pub fn rearrive_at_us(&self, rng: &mut DetRng, now_us: u64, offline_mean_us: u64) -> u64 {
        let eff_mean = offline_mean_us as f64 / self.intensity(now_us);
        let off = (rng.exp(eff_mean) as u64).max(1);
        let at = now_us.saturating_add(off);
        if let Some(f) = &self.flash_crowd {
            if now_us < f.at_us && at > f.at_us {
                return f.at_us.saturating_add(rng.range(0..f.ramp_us.max(1)));
            }
        }
        at
    }

    /// A ready-made heavy-churn showcase: Pareto(1.5) sessions, a
    /// period-compressed diurnal cycle, a flash crowd and a zapping mix
    /// — the `pplive_flashcrowd` perf cell and the docs use it.
    pub fn flashcrowd_preset() -> Self {
        SessionModel {
            law: Some(SessionLaw::Pareto(1.5)),
            diurnal: Some(Diurnal {
                period_us: 60_000_000,
                amplitude: 0.6,
                phase_us: 0,
            }),
            flash_crowd: Some(FlashCrowd {
                at_us: 8_000_000,
                ramp_us: 2_000_000,
            }),
            zapping: Some(Zapping {
                prob: 0.3,
                visit_mean_us: 5_000_000,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> DetRng {
        DetRng::stream(0xFEED, "fault.churn")
    }

    #[test]
    fn default_model_is_noop_and_matches_legacy_draws() {
        let model = SessionModel::default();
        assert!(model.is_noop());
        assert!(model.validate().is_ok());
        let (mut a, mut b) = (rng(), rng());
        for now in [0u64, 5_000_000, 123_456_789] {
            assert_eq!(
                model.draw_session_us(&mut a, 45_000_000),
                (b.exp(45_000_000.0) as u64).max(1)
            );
            assert_eq!(
                model.rearrive_at_us(&mut a, now, 20_000_000),
                now + (b.exp(20_000_000.0) as u64).max(1)
            );
        }
    }

    #[test]
    fn explicit_exp_law_is_still_noop() {
        let model = SessionModel {
            law: Some(SessionLaw::Exp),
            ..Default::default()
        };
        assert!(model.is_noop());
    }

    #[test]
    fn pareto_sessions_are_mean_matched() {
        let model = SessionModel {
            law: Some(SessionLaw::Pareto(2.5)),
            ..Default::default()
        };
        assert!(!model.is_noop());
        let mut r = rng();
        let n = 200_000u64;
        let mean = 45_000_000u64;
        let sum: u128 = (0..n)
            .map(|_| model.draw_session_us(&mut r, mean) as u128)
            .sum();
        let emp = sum as f64 / n as f64;
        let rel = (emp - mean as f64).abs() / mean as f64;
        assert!(rel < 0.05, "empirical mean {emp} drifted {rel} from {mean}");
    }

    #[test]
    fn lognormal_sessions_are_mean_matched() {
        let model = SessionModel {
            law: Some(SessionLaw::LogNormal(1.0)),
            ..Default::default()
        };
        let mut r = rng();
        let n = 200_000u64;
        let mean = 10_000_000u64;
        let sum: u128 = (0..n)
            .map(|_| model.draw_session_us(&mut r, mean) as u128)
            .sum();
        let emp = sum as f64 / n as f64;
        let rel = (emp - mean as f64).abs() / mean as f64;
        assert!(rel < 0.05, "empirical mean {emp} drifted {rel} from {mean}");
    }

    #[test]
    fn diurnal_envelope_bounds_and_mean() {
        let d = Diurnal {
            period_us: 1_000_000,
            amplitude: 0.8,
            phase_us: 250_000,
        };
        let steps = 10_000u64;
        let mut sum = 0.0;
        for k in 0..steps {
            let v = d.intensity(k * d.period_us / steps);
            assert!(v > 0.0 && v <= 1.0 + d.amplitude + 1e-9);
            sum += v;
        }
        let mean = sum / steps as f64;
        assert!((mean - 1.0).abs() < 1e-3, "envelope mean {mean} != 1");
    }

    #[test]
    fn flash_crowd_pulls_straddling_arrivals_into_the_ramp() {
        let model = SessionModel {
            flash_crowd: Some(FlashCrowd {
                at_us: 10_000_000,
                ramp_us: 2_000_000,
            }),
            ..Default::default()
        };
        let mut r = rng();
        let mut pulled = 0;
        for _ in 0..2_000 {
            let at = model.rearrive_at_us(&mut r, 1_000_000, 30_000_000);
            if at >= 10_000_000 {
                assert!(at <= 12_000_000, "straddler {at} outside the ramp");
                pulled += 1;
            }
        }
        assert!(pulled > 0, "no arrival ever straddled the event");
        // Arrivals after the event are left alone.
        for _ in 0..200 {
            let at = model.rearrive_at_us(&mut r, 13_000_000, 30_000_000);
            assert!(at > 13_000_000);
        }
    }

    #[test]
    fn zapping_mixes_in_short_visits() {
        let model = SessionModel {
            zapping: Some(Zapping {
                prob: 0.5,
                visit_mean_us: 1_000_000,
            }),
            ..Default::default()
        };
        let mut r = rng();
        let n = 100_000u64;
        let mean = 100_000_000u64; // long viewers, short zappers
        let sum: u128 = (0..n)
            .map(|_| model.draw_session_us(&mut r, mean) as u128)
            .sum();
        let emp = sum as f64 / n as f64;
        let expect = 0.5 * mean as f64 + 0.5 * 1_000_000.0;
        let rel = (emp - expect).abs() / expect;
        assert!(rel < 0.05, "zap mix mean {emp} drifted {rel} from {expect}");
    }

    #[test]
    fn validation_rejects_bad_ranges() {
        let bad_pareto = SessionModel {
            law: Some(SessionLaw::Pareto(1.0)),
            ..Default::default()
        };
        assert!(bad_pareto.validate().is_err());
        let bad_sigma = SessionModel {
            law: Some(SessionLaw::LogNormal(0.0)),
            ..Default::default()
        };
        assert!(bad_sigma.validate().is_err());
        let bad_diurnal = SessionModel {
            diurnal: Some(Diurnal {
                period_us: 0,
                amplitude: 0.5,
                phase_us: 0,
            }),
            ..Default::default()
        };
        assert!(bad_diurnal.validate().is_err());
        let bad_zap = SessionModel {
            zapping: Some(Zapping {
                prob: 1.5,
                visit_mean_us: 1,
            }),
            ..Default::default()
        };
        assert!(bad_zap.validate().is_err());
        assert!(SessionModel::flashcrowd_preset().validate().is_ok());
    }

    #[test]
    fn json_round_trip() {
        let model = SessionModel::flashcrowd_preset();
        let json = serde_json::to_string_pretty(&model).unwrap();
        let back: SessionModel = serde_json::from_str(&json).unwrap();
        assert_eq!(model, back);
        // Absent axes deserialize as None (backward compatibility).
        let sparse: SessionModel = serde_json::from_str("{\"law\": {\"Pareto\": [1.5]}}").unwrap();
        assert_eq!(sparse.law, Some(SessionLaw::Pareto(1.5)));
        assert!(sparse.diurnal.is_none());
    }
}

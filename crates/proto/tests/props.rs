//! Property tests for the protocol building blocks.

use netaware_proto::{BufferMap, Candidate, ChunkId, SelectionPolicy, StreamParams, BUFFER_WINDOW};
use proptest::prelude::*;
use std::collections::HashSet;

/// Model-based test of the buffer map against a HashSet reference that
/// implements the same sliding-window semantics.
#[derive(Debug, Clone)]
enum Op {
    Insert(u32),
    Advance(u32),
    Query(u32),
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u32..500).prop_map(Op::Insert),
        (0u32..500).prop_map(Op::Advance),
        (0u32..500).prop_map(Op::Query),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// BufferMap behaves like a window-limited set.
    #[test]
    fn bufmap_matches_reference(ops in prop::collection::vec(arb_op(), 0..200)) {
        let mut map = BufferMap::new();
        let mut reference: HashSet<u32> = HashSet::new();
        let mut base = 0u32;
        for op in ops {
            match op {
                Op::Insert(c) => {
                    map.insert(ChunkId(c));
                    if c >= base {
                        if c - base >= BUFFER_WINDOW {
                            // Window slides: oldest entries fall out.
                            base = c - (BUFFER_WINDOW - 1);
                            reference.retain(|&x| x >= base);
                        }
                        reference.insert(c);
                    }
                }
                Op::Advance(c) => {
                    map.advance_base(ChunkId(c));
                    if c > base {
                        base = c;
                        reference.retain(|&x| x >= base);
                    }
                }
                Op::Query(c) => {
                    prop_assert_eq!(
                        map.contains(ChunkId(c)),
                        reference.contains(&c),
                        "chunk {} (base {})", c, base
                    );
                }
            }
            prop_assert_eq!(map.base().0, base);
            prop_assert_eq!(map.held() as usize, reference.len());
        }
    }

    /// missing_in is the set complement over the queried range.
    #[test]
    fn bufmap_missing_is_complement(
        held in prop::collection::vec(0u32..100, 0..50),
        from in 0u32..100,
        span in 0u32..28,
    ) {
        let mut map = BufferMap::new();
        for &c in &held {
            map.insert(ChunkId(c));
        }
        let to = from + span;
        let missing: HashSet<u32> = map.missing_in(ChunkId(from), ChunkId(to)).map(|c| c.0).collect();
        for c in from..=to {
            prop_assert_eq!(missing.contains(&c), !map.contains(ChunkId(c)));
        }
    }

    /// Chunk timing: head_at and chunk_time_us are inverse-consistent
    /// for any positive stream parameters.
    #[test]
    fn stream_head_consistency(rate_kbps in 64u64..4_000, chunk_kb in 4u32..64, t in 0u64..7_200_000_000) {
        let s = StreamParams {
            rate_bps: rate_kbps * 1000,
            chunk_bytes: chunk_kb * 1000,
            packet_bytes: 1250,
        };
        if let Some(head) = s.head_at(t) {
            prop_assert!(s.chunk_time_us(head) <= t);
            prop_assert!(s.chunk_time_us(head.next()) > t);
        } else {
            prop_assert!(t < s.chunk_interval_us());
        }
    }

    /// Packet fragmentation covers the chunk exactly.
    #[test]
    fn packets_cover_chunk(chunk_bytes in 1_000u32..100_000, packet_bytes in 500u32..1500) {
        let s = StreamParams {
            rate_bps: 384_000,
            chunk_bytes,
            packet_bytes,
        };
        let total: u64 = (0..s.packets_per_chunk()).map(|i| s.packet_size(i) as u64).sum();
        prop_assert_eq!(total, chunk_bytes as u64);
        for i in 0..s.packets_per_chunk() {
            prop_assert!(s.packet_size(i) <= packet_bytes);
            prop_assert!(s.packet_size(i) > 0);
        }
    }

    /// Policy weights are always positive and finite, and each boost is
    /// monotone: improving a candidate never lowers its weight.
    #[test]
    fn policy_weight_monotone(
        bw_exp in 0.0f64..2.0,
        as_boost in 1.0f64..10.0,
        subnet_boost in 1.0f64..10.0,
        cc_boost in 1.0f64..4.0,
        stick in 1.0f64..12.0,
        est in prop::option::of(1_000u64..1_000_000_000),
    ) {
        let p = SelectionPolicy {
            bw_exponent: bw_exp,
            same_as_boost: as_boost,
            subnet_boost,
            same_cc_boost: cc_boost,
            stickiness: stick,
            unknown_bw_prior_bps: 4_000_000,
        };
        let base = Candidate { est_up_bps: est, ..Default::default() };
        let w0 = p.weight(&base);
        prop_assert!(w0.is_finite() && w0 > 0.0);
        for upgraded in [
            Candidate { same_as: true, ..base },
            Candidate { same_subnet: true, same_as: true, ..base },
            Candidate { same_cc: true, ..base },
            Candidate { is_last_provider: true, ..base },
        ] {
            let w1 = p.weight(&upgraded);
            prop_assert!(w1 >= w0 - 1e-12, "upgrade lowered weight: {w0} -> {w1}");
        }
    }

    /// Faster estimates never lower the weight when bw_exponent ≥ 0.
    #[test]
    fn policy_weight_bw_monotone(bw_exp in 0.0f64..2.0, a in 1_000u64..1_000_000_000, b in 1_000u64..1_000_000_000) {
        let p = SelectionPolicy {
            bw_exponent: bw_exp,
            ..SelectionPolicy::uniform()
        };
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let w_lo = p.weight(&Candidate { est_up_bps: Some(lo), ..Default::default() });
        let w_hi = p.weight(&Candidate { est_up_bps: Some(hi), ..Default::default() });
        prop_assert!(w_hi >= w_lo - 1e-12);
    }
}

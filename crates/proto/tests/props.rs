//! Randomized property tests for the protocol building blocks, driven by
//! a seeded [`DetRng`] so every run explores the same cases.

use netaware_proto::{BufferMap, Candidate, ChunkId, SelectionPolicy, StreamParams, BUFFER_WINDOW};
use netaware_sim::DetRng;
use std::collections::HashSet;

const CASES: usize = 256;

/// Model-based test of the buffer map against a HashSet reference that
/// implements the same sliding-window semantics.
#[derive(Debug, Clone)]
enum Op {
    Insert(u32),
    Advance(u32),
    Query(u32),
}

fn arb_op(rng: &mut DetRng) -> Op {
    let c = rng.range(0..500u32);
    match rng.range(0..3u32) {
        0 => Op::Insert(c),
        1 => Op::Advance(c),
        _ => Op::Query(c),
    }
}

/// BufferMap behaves like a window-limited set.
#[test]
fn bufmap_matches_reference() {
    let mut rng = DetRng::stream(0x5EED, "proto/bufmap_reference");
    for _ in 0..CASES {
        let n = rng.range(0..200usize);
        let ops: Vec<Op> = (0..n).map(|_| arb_op(&mut rng)).collect();
        let mut map = BufferMap::new();
        let mut reference: HashSet<u32> = HashSet::new();
        let mut base = 0u32;
        for op in ops {
            match op {
                Op::Insert(c) => {
                    map.insert(ChunkId(c));
                    if c >= base {
                        if c - base >= BUFFER_WINDOW {
                            // Window slides: oldest entries fall out.
                            base = c - (BUFFER_WINDOW - 1);
                            reference.retain(|&x| x >= base);
                        }
                        reference.insert(c);
                    }
                }
                Op::Advance(c) => {
                    map.advance_base(ChunkId(c));
                    if c > base {
                        base = c;
                        reference.retain(|&x| x >= base);
                    }
                }
                Op::Query(c) => {
                    assert_eq!(
                        map.contains(ChunkId(c)),
                        reference.contains(&c),
                        "chunk {c} (base {base})"
                    );
                }
            }
            assert_eq!(map.base().0, base);
            assert_eq!(map.held() as usize, reference.len());
        }
    }
}

/// missing_in is the set complement over the queried range.
#[test]
fn bufmap_missing_is_complement() {
    let mut rng = DetRng::stream(0x5EED, "proto/bufmap_missing");
    for _ in 0..CASES {
        let n = rng.range(0..50usize);
        let held: Vec<u32> = (0..n).map(|_| rng.range(0..100u32)).collect();
        let from: u32 = rng.range(0..100u32);
        let span: u32 = rng.range(0..28u32);
        let mut map = BufferMap::new();
        for &c in &held {
            map.insert(ChunkId(c));
        }
        let to = from + span;
        let missing: HashSet<u32> =
            map.missing_in(ChunkId(from), ChunkId(to)).map(|c| c.0).collect();
        for c in from..=to {
            assert_eq!(missing.contains(&c), !map.contains(ChunkId(c)));
        }
    }
}

/// Chunk timing: head_at and chunk_time_us are inverse-consistent for any
/// positive stream parameters.
#[test]
fn stream_head_consistency() {
    let mut rng = DetRng::stream(0x5EED, "proto/stream_head");
    for _ in 0..CASES {
        let rate_kbps: u64 = rng.range(64..4_000u64);
        let chunk_kb: u32 = rng.range(4..64u32);
        let t: u64 = rng.range(0..7_200_000_000u64);
        let s = StreamParams {
            rate_bps: rate_kbps * 1000,
            chunk_bytes: chunk_kb * 1000,
            packet_bytes: 1250,
        };
        if let Some(head) = s.head_at(t) {
            assert!(s.chunk_time_us(head) <= t);
            assert!(s.chunk_time_us(head.next()) > t);
        } else {
            assert!(t < s.chunk_interval_us());
        }
    }
}

/// Packet fragmentation covers the chunk exactly.
#[test]
fn packets_cover_chunk() {
    let mut rng = DetRng::stream(0x5EED, "proto/packets_cover");
    for _ in 0..CASES {
        let chunk_bytes: u32 = rng.range(1_000..100_000u32);
        let packet_bytes: u32 = rng.range(500..1500u32);
        let s = StreamParams {
            rate_bps: 384_000,
            chunk_bytes,
            packet_bytes,
        };
        let total: u64 = (0..s.packets_per_chunk()).map(|i| s.packet_size(i) as u64).sum();
        assert_eq!(total, chunk_bytes as u64);
        for i in 0..s.packets_per_chunk() {
            assert!(s.packet_size(i) <= packet_bytes);
            assert!(s.packet_size(i) > 0);
        }
    }
}

/// Policy weights are always positive and finite, and each boost is
/// monotone: improving a candidate never lowers its weight.
#[test]
fn policy_weight_monotone() {
    let mut rng = DetRng::stream(0x5EED, "proto/weight_monotone");
    for _ in 0..CASES {
        let p = SelectionPolicy {
            bw_exponent: rng.range(0.0..2.0),
            same_as_boost: rng.range(1.0..10.0),
            subnet_boost: rng.range(1.0..10.0),
            same_cc_boost: rng.range(1.0..4.0),
            stickiness: rng.range(1.0..12.0),
            unknown_bw_prior_bps: 4_000_000,
        };
        let est = if rng.chance(0.5) {
            Some(rng.range(1_000..1_000_000_000u64))
        } else {
            None
        };
        let base = Candidate { est_up_bps: est, ..Default::default() };
        let w0 = p.weight(&base);
        assert!(w0.is_finite() && w0 > 0.0);
        for upgraded in [
            Candidate { same_as: true, ..base },
            Candidate { same_subnet: true, same_as: true, ..base },
            Candidate { same_cc: true, ..base },
            Candidate { is_last_provider: true, ..base },
        ] {
            let w1 = p.weight(&upgraded);
            assert!(w1 >= w0 - 1e-12, "upgrade lowered weight: {w0} -> {w1}");
        }
    }
}

/// Faster estimates never lower the weight when bw_exponent ≥ 0.
#[test]
fn policy_weight_bw_monotone() {
    let mut rng = DetRng::stream(0x5EED, "proto/weight_bw_monotone");
    for _ in 0..CASES {
        let p = SelectionPolicy {
            bw_exponent: rng.range(0.0..2.0),
            ..SelectionPolicy::uniform()
        };
        let a: u64 = rng.range(1_000..1_000_000_000u64);
        let b: u64 = rng.range(1_000..1_000_000_000u64);
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let w_lo = p.weight(&Candidate { est_up_bps: Some(lo), ..Default::default() });
        let w_hi = p.weight(&Candidate { est_up_bps: Some(hi), ..Default::default() });
        assert!(w_hi >= w_lo - 1e-12);
    }
}

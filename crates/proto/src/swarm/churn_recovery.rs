//! Churn-recovery behaviour: peer arrival/departure, dead-peer
//! eviction, stranded-request re-queue, and request-timeout backoff.
//!
//! Absorbs what used to live in `swarm/faults.rs`: the churn process
//! rides the dedicated `"fault.churn"` RNG stream, so enabling it never
//! shifts a protocol stream, and with no churn plan the hooks return
//! before touching anything — the structural guarantee behind
//! "fault-disabled runs are byte-identical to pre-fault baselines".
//! The request-timeout expiry (the other half of the retry machinery,
//! whose attempt counters live in this behaviour's
//! [`RecoveryState`](super::state::RecoveryState) slice) runs on every
//! tick regardless of faults.
//!
//! ## Fidelity boundary
//!
//! Churn applies to the *external* population only: probes are
//! persistent vantage points and the source never leaves.

use super::behaviour::{Behaviour, Ctx};
use super::state::Event;
use super::SwarmCore;
use crate::chunk::ChunkId;
use crate::peer::{PeerId, PeerRole};
use netaware_faults::{ChurnPlan, SessionModel};
use netaware_obs::Level;
use netaware_sim::{DetRng, SimTime};

/// Estimate recorded for a provider that timed out (punitive, keeps it
/// classified as "tried" while making re-selection unlikely).
const TIMEOUT_EST_BPS: u64 = 200_000;

/// Churn process state: the configured plan and the stream that decides
/// session/offline durations (who is offline lives in the core, where
/// discovery and scheduling consult it).
///
/// `Clone` preserves the RNG's *mid-stream position*: shard replicas
/// re-draw the same session/offline durations in lockstep, which is how
/// churn — a broadcast event processed by every shard — stays identical
/// across shard layouts.
#[derive(Clone)]
pub(crate) struct ChurnState {
    plan: ChurnPlan,
    /// Session model reshaping the renewal process; the default model
    /// reproduces the legacy exponential draws bit-for-bit.
    model: SessionModel,
    rng: DetRng,
}

impl ChurnState {
    /// Draws an online session length, µs (≥ 1), per the session model
    /// (exponential with the default model).
    fn session_us(&mut self) -> u64 {
        self.model
            .draw_session_us(&mut self.rng, self.plan.session_mean_us)
    }

    /// Computes the absolute re-arrival time, µs, of a peer going
    /// offline at `now_us` (`now + Exp(offline_mean)` with the default
    /// model; diurnal/flash-crowd axes reshape it).
    fn rearrive_at_us(&mut self, now_us: u64) -> u64 {
        self.model
            .rearrive_at_us(&mut self.rng, now_us, self.plan.offline_mean_us)
    }
}

/// The churn-recovery behaviour.
#[derive(Default)]
pub(crate) struct ChurnRecovery {
    /// Churn process, when a fault plan enables it.
    churn: Option<ChurnState>,
}

impl ChurnRecovery {
    /// Installs (or clears) the churn process; called by `set_faults`.
    /// `model` reshapes the renewal draws (pass `SessionModel::default()`
    /// for the legacy exponential process).
    pub(crate) fn set_churn(&mut self, plan: Option<ChurnPlan>, model: SessionModel, seed: u64) {
        self.churn = plan.map(|plan| ChurnState {
            plan,
            model,
            rng: DetRng::stream(seed, "fault.churn"),
        });
    }

    /// A shard replica: the churn process is copied *mid-stream* (not
    /// re-seeded), so replicas draw identical durations in lockstep.
    pub(crate) fn clone_replica(&self) -> ChurnRecovery {
        ChurnRecovery {
            churn: self.churn.clone(),
        }
    }

    /// Scrubs a departed peer from every probe's protocol state and
    /// re-queues the chunk requests that were pending on it (the
    /// mid-transfer-crash recovery path). Returns the *owned* probes
    /// that lost a neighbor entry.
    ///
    /// Churn events are broadcast: every shard replica runs this over
    /// all probes (non-owned scrubs are discarded at merge time), but
    /// counters, obs events and the returned replacement list are
    /// restricted to probes this core owns — otherwise shard replicas
    /// would double-count into the shared metrics and re-run discovery
    /// draws the owner already made.
    fn evict_peer(core: &mut SwarmCore<'_>, id: PeerId, now: SimTime) -> Vec<usize> {
        let mut touched = Vec::new();
        let mut requeued_by_probe: Vec<(usize, u64)> = Vec::new();
        for (i, s) in core.probe_states.iter_mut().enumerate() {
            s.link.ext_up.remove(&id);
            let had = s.disc.neighbors.len();
            s.disc.neighbors.retain(|n| n.id != id);
            if s.disc.neighbors.len() != had {
                touched.push(i);
            }
            s.sched.active_requesters.retain(|r| *r != id);
            s.link.last_rx_from.remove(&id);
            if s.sched.last_provider == Some(id) {
                s.sched.last_provider = None;
            }
            // Requests in flight to the departed peer will never be
            // answered: move them to the prompt re-request queue instead
            // of letting them ride out the full request timeout.
            let mut requeued: Vec<ChunkId> = Vec::new();
            s.sched.pending.retain(|p| {
                if p.provider == id {
                    requeued.push(p.chunk);
                    false
                } else {
                    true
                }
            });
            if !requeued.is_empty() {
                requeued_by_probe.push((i, requeued.len() as u64));
            }
            for c in requeued {
                if !s.rec.requeue.contains(&c) {
                    s.rec.requeue.push(c);
                }
            }
        }
        touched.retain(|&i| core.owns_probe(i));
        for (i, n) in requeued_by_probe {
            if !core.owns_probe(i) {
                continue;
            }
            core.report.requests_requeued += n;
            core.m.requests_requeued.add(n);
            // Broadcast-handling emission: re-tag onto the probe's lane
            // so the tag is unique and shard-layout-invariant.
            core.tag_probe_sub(i, now);
            netaware_obs::event!(
                core.obs,
                Level::Debug,
                "swarm.churn.requests_requeued",
                now,
                "probe" = i,
                "peer" = id.0,
                "requests" = n,
            );
        }
        touched
    }
}

impl Behaviour for ChurnRecovery {
    /// Seeds the churn process at the start of the event loop: every
    /// external either starts offline (evicted from the bootstrap
    /// neighbor tables, arriving later) or gets a departure scheduled
    /// at the end of its first session.
    fn on_start(&mut self, ctx: &mut Ctx<'_, '_>) {
        let Some(churn) = self.churn.as_mut() else {
            return;
        };
        let ids: Vec<PeerId> = ctx.core.external_ids();
        let mut start_offline = Vec::new();
        for id in ids {
            let begins_offline =
                churn.plan.initial_offline > 0.0 && churn.rng.chance(churn.plan.initial_offline);
            if begins_offline {
                let back_at = churn.rearrive_at_us(0);
                ctx.core.offline.insert(id);
                ctx.schedule(SimTime::from_us(back_at), Event::Arrive(id));
                start_offline.push(id);
            } else {
                let gone_at = churn.session_us();
                ctx.schedule(SimTime::from_us(gone_at), Event::Depart(id));
            }
        }
        // Initially-offline externals may have been handed out by the
        // tracker bootstrap before the plan was attached: evict them.
        for id in start_offline {
            Self::evict_peer(ctx.core, id, SimTime::ZERO);
        }
    }

    /// Expire timed-out requests, punishing the slow provider (the
    /// scheduling tick that runs after this one sees the freed budget).
    fn on_tick(&mut self, ctx: &mut Ctx<'_, '_>, i: usize) {
        let now_us = ctx.now().as_us();
        let core = &mut *ctx.core;
        let s = &mut core.probe_states[i];
        let mut timed_out = Vec::new();
        s.sched.pending.retain(|p| {
            if p.deadline_us <= now_us {
                timed_out.push(p.provider);
                false
            } else {
                true
            }
        });
        core.m.requests_timed_out.add(timed_out.len() as u64);
        let s = &mut core.probe_states[i];
        for prov in timed_out {
            let e = s.sched.est_bps.entry(prov).or_insert(TIMEOUT_EST_BPS);
            *e = (*e).min(TIMEOUT_EST_BPS);
        }
    }

    /// Retry bookkeeping of a completed delivery: the chunk is no longer
    /// missing, so its backoff counter and any re-queue entry go away.
    fn on_delivered(
        &mut self,
        ctx: &mut Ctx<'_, '_>,
        to: PeerId,
        _from: PeerId,
        chunk: ChunkId,
        _est_bps: u64,
    ) {
        let Some(ti) = ctx.core.probe_index(to) else {
            return;
        };
        let s = &mut ctx.core.probe_states[ti];
        s.rec.attempts.remove(&chunk);
        s.rec.requeue.retain(|c| *c != chunk);
    }

    /// An external's session ends: it vanishes mid-whatever-it-was-doing.
    fn on_depart(&mut self, ctx: &mut Ctx<'_, '_>, id: PeerId) {
        let now = ctx.now();
        debug_assert_eq!(ctx.core.peers[id.0 as usize].role, PeerRole::External);
        let back_at = {
            let Some(churn) = self.churn.as_mut() else {
                return;
            };
            if !ctx.core.offline.insert(id) {
                return; // already gone (stale event)
            }
            SimTime::from_us(churn.rearrive_at_us(now.as_us()))
        };
        ctx.schedule(back_at, Event::Arrive(id));
        // Broadcast event: every shard replica handles it, but the
        // swarm-global count and event are the leader's to record.
        if ctx.core.is_leader() {
            ctx.core.report.peers_departed += 1;
            ctx.core.m.peers_departed.inc();
            netaware_obs::event!(
                ctx.core.obs,
                Level::Debug,
                "swarm.churn.peer_departed",
                now,
                "peer" = id.0,
            );
        }
        let touched = Self::evict_peer(ctx.core, id, now);
        // Dead-peer replacement: each probe that lost this neighbor
        // immediately asks the gossip/tracker view for a substitute
        // (which fails during tracker outages — then the next tick's
        // discovery top-up retries).
        for i in touched {
            ctx.request_discovery(i);
        }
    }

    /// A departed external rejoins the overlay and becomes discoverable
    /// again; its next departure is scheduled.
    fn on_arrive(&mut self, ctx: &mut Ctx<'_, '_>, id: PeerId) {
        let now = ctx.now();
        let Some(churn) = self.churn.as_mut() else {
            return;
        };
        if !ctx.core.offline.remove(&id) {
            return; // was never marked offline (stale event)
        }
        let gone_at = now + churn.session_us();
        ctx.schedule(gone_at, Event::Depart(id));
        if ctx.core.is_leader() {
            ctx.core.report.peers_arrived += 1;
            ctx.core.m.peers_arrived.inc();
            netaware_obs::event!(
                ctx.core.obs,
                Level::Debug,
                "swarm.churn.peer_arrived",
                now,
                "peer" = id.0,
            );
        }
    }
}

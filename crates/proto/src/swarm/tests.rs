//! Swarm behaviour tests on a miniature scenario.

use super::*;
use crate::chunk::{ChunkId, StreamParams};
use crate::profiles::AppProfile;
use crate::swarm::state::{ExternalSpec, PeerSetup, ProbeSpec};
use netaware_net::{
    AccessClass, AccessLink, AsId, AsInfo, AsKind, CountryCode, GeoRegistry, GeoRegistryBuilder,
    Ip, LatencyModel, PathModel, Prefix,
};
use netaware_trace::{Direction, PayloadKind, TraceView};

fn mini_registry() -> GeoRegistry {
    let mut b = GeoRegistryBuilder::new();
    b.register_as(AsInfo::new(2, CountryCode::IT, AsKind::Academic, "GARR"));
    b.register_as(AsInfo::new(1, CountryCode::HU, AsKind::Academic, "BME"));
    b.register_as(AsInfo::new(100, CountryCode::CN, AsKind::Carrier, "CN-BB"));
    b.announce(Prefix::of(Ip::from_octets(130, 192, 0, 0), 16), AsId(2))
        .unwrap();
    b.announce(Prefix::of(Ip::from_octets(152, 66, 0, 0), 16), AsId(1))
        .unwrap();
    b.announce(Prefix::of(Ip::from_octets(58, 0, 0, 0), 8), AsId(100))
        .unwrap();
    b.build()
}

fn mini_setup(n_ext: usize) -> PeerSetup {
    let probes = vec![
        // Two LAN probes in the same subnet (PoliTO-style site).
        ProbeSpec {
            ip: Ip::from_octets(130, 192, 1, 10),
            access: AccessLink::lan(),
        },
        ProbeSpec {
            ip: Ip::from_octets(130, 192, 1, 11),
            access: AccessLink::lan(),
        },
        // LAN probe in another AS/country.
        ProbeSpec {
            ip: Ip::from_octets(152, 66, 7, 5),
            access: AccessLink::lan(),
        },
        // DSL home probe.
        ProbeSpec {
            ip: Ip::from_octets(58, 200, 1, 9),
            access: AccessLink::open(AccessClass::Dsl(6000, 512)),
        },
    ];
    let externals = (0..n_ext)
        .map(|i| {
            let high = i % 5 < 2; // 40% high-bw
            ExternalSpec {
                ip: Ip(Ip::from_octets(58, 1, 0, 0).0 + (i as u32) * 277 + 1),
                access: if high {
                    AccessLink::lan()
                } else {
                    AccessLink::open(AccessClass::Dsl(4000, 384))
                },
            }
        })
        .collect();
    PeerSetup {
        source: ExternalSpec {
            ip: Ip::from_octets(58, 99, 0, 1),
            access: AccessLink::lan(),
        },
        probes,
        externals,
    }
}

fn run_mini(profile: AppProfile, secs: u64, seed: u64) -> (netaware_trace::TraceSet, SwarmReport) {
    let reg = mini_registry();
    let env = NetworkEnv {
        registry: &reg,
        paths: PathModel::new(seed),
        latency: LatencyModel::new(seed),
    };
    let cfg = SwarmConfig {
        seed,
        duration_us: secs * 1_000_000,
        stream: StreamParams::cctv1(),
        profile,
    };
    let swarm = Swarm::new(cfg, env, mini_setup(80));
    swarm.run()
}

fn small_profile(base: AppProfile) -> AppProfile {
    AppProfile {
        max_neighbors: 40,
        init_neighbors: 20,
        halo_contacts_per_sec: base.halo_contacts_per_sec.min(0.5),
        ..base
    }
}

#[test]
fn traces_are_captured_at_every_probe() {
    let (set, _) = run_mini(small_profile(AppProfile::sopcast()), 30, 1);
    assert_eq!(set.traces.len(), 4);
    for t in &set.traces {
        assert!(!t.is_empty(), "probe {} captured nothing", t.probe);
    }
}

#[test]
fn timestamps_within_reasonable_horizon() {
    let (set, _) = run_mini(small_profile(AppProfile::sopcast()), 20, 2);
    for t in &set.traces {
        for r in t.records_unsorted() {
            // In-flight packets may land shortly after the horizon.
            assert!(r.ts_us < 25_000_000, "stray packet at {}", r.ts_us);
        }
    }
}

#[test]
fn probes_receive_roughly_the_stream_rate() {
    let (set, report) = run_mini(small_profile(AppProfile::sopcast()), 60, 3);
    // Skip the warmup; measure RX video rate over the steady tail.
    for t in &set.traces {
        let v = TraceView::of(t)
            .direction(Direction::Rx)
            .window(20_000_000, 60_000_000)
            .min_size(1000);
        let kbps = v.bytes() as f64 * 8.0 / 40.0 / 1000.0;
        assert!(
            (250.0..700.0).contains(&kbps),
            "probe {} RX video rate {kbps} kb/s",
            t.probe
        );
    }
    assert!(report.continuity() > 0.9, "continuity {}", report.continuity());
}

#[test]
fn deterministic_same_seed_same_trace() {
    let (a, ra) = run_mini(small_profile(AppProfile::tvants()), 15, 7);
    let (b, rb) = run_mini(small_profile(AppProfile::tvants()), 15, 7);
    assert_eq!(a.total_packets(), b.total_packets());
    assert_eq!(a.total_bytes(), b.total_bytes());
    assert_eq!(ra.chunks_delivered, rb.chunks_delivered);
    for (ta, tb) in a.traces.iter().zip(&b.traces) {
        assert_eq!(ta.records_unsorted(), tb.records_unsorted());
    }
}

/// The tentpole contract of the sharded engine: for any worker count,
/// clean or faulted, every probe trace and every report counter is
/// identical to the single-threaded run.
#[test]
fn shard_count_never_changes_the_run() {
    let run = |shards: usize, faulted: bool| {
        let reg = mini_registry();
        let env = NetworkEnv {
            registry: &reg,
            paths: PathModel::new(9),
            latency: LatencyModel::new(9),
        };
        let cfg = SwarmConfig {
            seed: 9,
            duration_us: 20_000_000,
            stream: StreamParams::cctv1(),
            profile: small_profile(AppProfile::pplive()),
        };
        let mut swarm = Swarm::new(cfg, env, mini_setup(60));
        if faulted {
            swarm.set_faults(&netaware_faults::FaultPlan::from_flags(Some(0.02), None, true));
        }
        swarm.set_shards(shards);
        swarm.run()
    };
    for faulted in [false, true] {
        let (base_set, base_report) = run(1, faulted);
        assert!(base_report.chunks_delivered > 0, "degenerate baseline");
        for shards in [2, 3, 8] {
            let (set, report) = run(shards, faulted);
            assert_eq!(
                format!("{base_report:?}"),
                format!("{report:?}"),
                "report diverged at {shards} shards (faulted={faulted})"
            );
            for (ta, tb) in base_set.traces.iter().zip(&set.traces) {
                assert_eq!(
                    ta.records_unsorted(),
                    tb.records_unsorted(),
                    "trace of probe {} diverged at {shards} shards (faulted={faulted})",
                    ta.probe
                );
            }
        }
    }
}

#[test]
fn different_seeds_differ() {
    let (a, _) = run_mini(small_profile(AppProfile::tvants()), 15, 7);
    let (b, _) = run_mini(small_profile(AppProfile::tvants()), 15, 8);
    assert_ne!(a.total_bytes(), b.total_bytes());
}

#[test]
fn video_and_signaling_sizes_are_separable() {
    let (set, _) = run_mini(small_profile(AppProfile::sopcast()), 20, 4);
    for t in &set.traces {
        for r in t.records_unsorted() {
            match r.kind {
                PayloadKind::Video => assert!(r.size >= 1000, "video pkt of {}", r.size),
                PayloadKind::Signaling => assert!(r.size < 400, "signal pkt of {}", r.size),
            }
        }
    }
}

#[test]
fn rx_video_ipg_reflects_sender_class() {
    // From LAN senders the min IPG at a LAN probe must be ~0.1 ms;
    // from DSL senders ~19 ms. Crank exploration so several distinct
    // providers contribute within a short run.
    let profile = AppProfile {
        exploration: 0.35,
        ..small_profile(AppProfile::sopcast())
    };
    let (set, _) = run_mini(profile, 60, 5);
    let reg = mini_registry();
    let lan_probe = Ip::from_octets(130, 192, 1, 10);
    let trace = set
        .traces
        .iter()
        .find(|t| t.probe == lan_probe)
        .unwrap();
    let mut min_gap: std::collections::HashMap<Ip, u64> = std::collections::HashMap::new();
    let mut last_ts: std::collections::HashMap<Ip, u64> = std::collections::HashMap::new();
    for r in trace.records() {
        if r.dst != lan_probe || r.size < 1000 {
            continue;
        }
        if let Some(&prev) = last_ts.get(&r.src) {
            let gap = r.ts_us - prev;
            min_gap
                .entry(r.src)
                .and_modify(|g| *g = (*g).min(gap))
                .or_insert(gap);
        }
        last_ts.insert(r.src, r.ts_us);
    }
    let _ = reg;
    let mut checked = 0;
    for (src, gap) in min_gap {
        // The mini population: LAN externals have up=100 Mb/s (gap 100 µs),
        // DSL 384 kb/s (gap ≈ 26 ms). Probes are LAN except the DSL one.
        if gap < 1_000 {
            checked += 1; // high-bw path observed
        } else {
            assert!(gap > 5_000, "ambiguous min IPG {gap} from {src}");
            checked += 1;
        }
    }
    assert!(checked >= 2, "too few video sources to check ({checked})");
}

#[test]
fn ttl_of_received_packets_encodes_hops() {
    let (set, _) = run_mini(small_profile(AppProfile::sopcast()), 20, 6);
    for t in &set.traces {
        for r in t.records_unsorted() {
            if r.dst == t.probe {
                assert!(r.ttl <= 128);
                assert!(r.ttl >= 60, "implausible TTL {}", r.ttl);
            } else {
                assert_eq!(r.ttl, 128, "TX capture must still have initial TTL");
            }
        }
    }
}

#[test]
fn same_subnet_probes_see_zero_hop_ttl() {
    let (set, _) = run_mini(small_profile(AppProfile::tvants()), 30, 9);
    let a = Ip::from_octets(130, 192, 1, 10);
    let b = Ip::from_octets(130, 192, 1, 11);
    let t = set.traces.iter().find(|t| t.probe == a).unwrap();
    let from_sibling: Vec<u8> = t
        .records_unsorted()
        .iter()
        .filter(|r| r.src == b && r.dst == a)
        .map(|r| r.ttl)
        .collect();
    assert!(!from_sibling.is_empty(), "siblings never exchanged packets");
    assert!(from_sibling.iter().all(|&ttl| ttl == 128));
}

#[test]
fn pplive_contacts_vastly_more_peers() {
    let pp = small_profile(AppProfile::pplive());
    let (set_pp, _) = run_mini(pp, 30, 10);
    let (set_tv, _) = run_mini(small_profile(AppProfile::tvants()), 30, 10);
    let distinct = |set: &netaware_trace::TraceSet| {
        let mut s = std::collections::HashSet::new();
        for t in &set.traces {
            for r in t.records_unsorted() {
                s.insert(if r.src == t.probe { r.dst } else { r.src });
            }
        }
        s.len()
    };
    let (n_pp, n_tv) = (distinct(&set_pp), distinct(&set_tv));
    assert!(
        n_pp > n_tv,
        "PPLive contacted {n_pp} ≤ TVAnts {n_tv}"
    );
}

#[test]
fn upload_factor_orders_tx_volume() {
    let (set_pp, _) = run_mini(small_profile(AppProfile::pplive()), 60, 11);
    let (set_sc, _) = run_mini(small_profile(AppProfile::sopcast()), 60, 11);
    let tx_bytes = |set: &netaware_trace::TraceSet| -> u64 {
        set.traces
            .iter()
            .map(|t| TraceView::of(t).direction(Direction::Tx).min_size(1000).bytes())
            .sum()
    };
    let (pp, sc) = (tx_bytes(&set_pp), tx_bytes(&set_sc));
    assert!(pp > 2 * sc, "PPLive TX {pp} not ≫ SopCast TX {sc}");
}

#[test]
fn report_counters_are_consistent() {
    let (_, report) = run_mini(small_profile(AppProfile::sopcast()), 30, 12);
    assert!(report.chunks_delivered > 0);
    assert!(report.signal_packets > 0);
    assert!(report.events_dispatched > 0);
    assert!(report.chunks_served_by_externals + report.chunks_served_by_probes > 0);
}

#[test]
fn empty_external_population_still_runs() {
    // Probes + source only: the swarm must limp along on the source.
    let reg = mini_registry();
    let env = NetworkEnv {
        registry: &reg,
        paths: PathModel::new(1),
        latency: LatencyModel::new(1),
    };
    let mut setup = mini_setup(0);
    setup.externals.clear();
    let cfg = SwarmConfig {
        seed: 1,
        duration_us: 20_000_000,
        stream: StreamParams::cctv1(),
        profile: small_profile(AppProfile::sopcast()),
    };
    let (set, report) = Swarm::new(cfg, env, setup).run();
    assert_eq!(set.traces.len(), 4);
    assert!(report.chunks_delivered > 0, "source alone must sustain the stream");
}

// ---------- transfer-layer internals ----------

fn mini_swarm(_seed: u64) -> (netaware_net::GeoRegistry, PeerSetup) {
    (mini_registry(), mini_setup(20))
}

#[test]
fn deliver_to_probe_paces_per_flow() {
    let (reg, setup) = mini_swarm(1);
    let env = NetworkEnv {
        registry: &reg,
        paths: PathModel::new(1),
        latency: LatencyModel::new(1),
    };
    let cfg = SwarmConfig {
        seed: 1,
        duration_us: 1,
        stream: StreamParams::cctv1(),
        profile: small_profile(AppProfile::sopcast()),
    };
    let mut swarm = Swarm::new(cfg, env, setup);
    let a = crate::peer::PeerId(50); // some external
    let b = crate::peer::PeerId(51); // another external
    let t0 = netaware_sim::SimTime::from_ms(100);

    // Flow a: two packets arriving "simultaneously" must be spaced by
    // the downlink tx time (probe 0 is a LAN probe: 100 µs for 1250 B).
    let d1 = swarm.core.deliver_to_probe(0, a, t0, 1250);
    let d2 = swarm.core.deliver_to_probe(0, a, t0, 1250);
    assert_eq!(d2 - d1, 100);

    // A different flow is NOT paced against flow a, even if its packet
    // arrives at the same instant.
    let d3 = swarm.core.deliver_to_probe(0, b, t0, 1250);
    assert_eq!(d3, t0);

    // A far-future arrival on flow b must not delay later flow-a packets.
    let far = netaware_sim::SimTime::from_secs(500);
    let _ = swarm.core.deliver_to_probe(0, b, far, 1250);
    let d4 = swarm.core.deliver_to_probe(0, a, t0 + 10_000, 1250);
    assert!(d4 < netaware_sim::SimTime::from_secs(1), "poisoned by foreign flow: {d4:?}");
}

#[test]
fn modem_probe_coalesces_bursts() {
    let (reg, setup) = mini_swarm(2);
    let env = NetworkEnv {
        registry: &reg,
        paths: PathModel::new(2),
        latency: LatencyModel::new(2),
    };
    let cfg = SwarmConfig {
        seed: 2,
        duration_us: 1,
        stream: StreamParams::cctv1(),
        profile: small_profile(AppProfile::sopcast()),
    };
    let mut swarm = Swarm::new(cfg, env, setup);
    // Probe 3 is the DSL home probe (6 Mb/s down): it has a modem.
    assert!(swarm.core.probe_states[3].link.modem.is_some());
    assert!(swarm.core.probe_states[0].link.modem.is_none());
    let a = crate::peer::PeerId(50);
    let t0 = netaware_sim::SimTime::from_ms(100);
    // Packets paced at the 6 Mb/s drain (1.67 ms apart) mostly land in
    // the same 10 ms interleave bucket and are delivered 100 µs apart;
    // a train of 6 is guaranteed to contain at least one such pair.
    let deliveries: Vec<_> = (0..6)
        .map(|_| swarm.core.deliver_to_probe(3, a, t0, 1250))
        .collect();
    let min_gap = deliveries
        .windows(2)
        .map(|w| w[1].since(w[0]))
        .min()
        .unwrap();
    assert_eq!(min_gap, 100, "modem burst spacing");
    // And delivery is never before the nominal drain time.
    assert!(deliveries[0] >= t0);
}

#[test]
fn sample_held_uniformity_and_edges() {
    use crate::chunk::{BufferMap, ChunkId};
    use crate::swarm::transfer::sample_held;
    let empty = BufferMap::new();
    assert_eq!(sample_held(&empty, 7), None);

    let mut m = BufferMap::new();
    for c in [2u32, 5, 9] {
        m.insert(ChunkId(c));
    }
    let mut seen = std::collections::HashSet::new();
    for pick in 0..30u32 {
        let c = sample_held(&m, pick).unwrap();
        assert!(m.contains(c));
        seen.insert(c.0);
    }
    assert_eq!(seen, [2u32, 5, 9].into_iter().collect());
}

#[test]
fn halo_contacts_appear_as_signaling_only_peers() {
    // Crank the halo rate: the trace must contain many remotes that
    // exchanged only small packets (contacted, never contributing).
    let profile = AppProfile {
        halo_contacts_per_sec: 3.0,
        ..small_profile(AppProfile::sopcast())
    };
    let (set, _) = run_mini(profile, 30, 14);
    let mut signaling_only = 0;
    let mut with_video = 0;
    for t in &set.traces {
        let mut by_remote: std::collections::HashMap<Ip, bool> = std::collections::HashMap::new();
        for r in t.records_unsorted() {
            let remote = if r.src == t.probe { r.dst } else { r.src };
            let e = by_remote.entry(remote).or_insert(false);
            *e |= r.size >= 1000;
        }
        signaling_only += by_remote.values().filter(|v| !**v).count();
        with_video += by_remote.values().filter(|v| **v).count();
    }
    assert!(signaling_only > 0, "no signaling-only contacts captured");
    assert!(with_video > 0);
}

#[test]
fn demand_stickiness_narrows_the_requester_set() {
    // High stickiness: the same requesters come back; low stickiness:
    // the upload contributor set widens.
    let mk = |stickiness: f64, seed: u64| {
        let profile = AppProfile {
            demand_stickiness: stickiness,
            ..small_profile(AppProfile::sopcast())
        };
        let (set, _) = run_mini(profile, 60, seed);
        // Count distinct remotes the probes sent video to.
        let mut requesters = std::collections::HashSet::new();
        for t in &set.traces {
            for r in t.records_unsorted() {
                if r.src == t.probe && r.size >= 1000 {
                    requesters.insert(r.dst);
                }
            }
        }
        requesters.len()
    };
    let sticky = mk(0.95, 15);
    let loose = mk(0.0, 15);
    assert!(
        loose > sticky,
        "stickiness 0.95 → {sticky} requesters, 0.0 → {loose}"
    );
}

#[test]
fn upload_backlog_cap_limits_serving() {
    // A tiny backlog cap forces refusals under the same demand.
    let strict = AppProfile {
        upload_backlog_cap_us: 1, // effectively refuse when busy
        ..small_profile(AppProfile::pplive())
    };
    let (_, strict_report) = run_mini(strict, 30, 16);
    let lax = AppProfile {
        upload_backlog_cap_us: 10_000_000,
        ..small_profile(AppProfile::pplive())
    };
    let (_, lax_report) = run_mini(lax, 30, 16);
    assert!(
        strict_report.chunks_refused > lax_report.chunks_refused,
        "strict {} vs lax {}",
        strict_report.chunks_refused,
        lax_report.chunks_refused
    );
    assert!(
        strict_report.chunks_served_by_probes < lax_report.chunks_served_by_probes,
        "strict should serve less"
    );
}

#[test]
fn per_probe_report_rows_cover_every_probe() {
    let (set, report) = run_mini(small_profile(AppProfile::tvants()), 20, 17);
    assert_eq!(report.per_probe.len(), set.traces.len());
    let probes: std::collections::HashSet<Ip> = set.traces.iter().map(|t| t.probe).collect();
    for row in &report.per_probe {
        assert!(probes.contains(&row.probe));
        assert!((0.0..=1.0).contains(&row.continuity));
    }
    let sum: u64 = report.per_probe.iter().map(|p| p.delivered).sum();
    assert_eq!(sum, report.chunks_delivered);
}

// ---------- fault injection & recovery ----------

fn mini_cfg(secs: u64, seed: u64) -> SwarmConfig {
    SwarmConfig {
        seed,
        duration_us: secs * 1_000_000,
        stream: StreamParams::cctv1(),
        profile: small_profile(AppProfile::sopcast()),
    }
}

/// Regression test for the old "drop the request and let the timeout
/// catch it" behaviour: a pending request whose provider departs must
/// move to the prompt re-request queue immediately, not ride out the
/// full request timeout.
#[test]
fn departed_provider_pending_requests_move_to_requeue() {
    let reg = mini_registry();
    let env = NetworkEnv {
        registry: &reg,
        paths: PathModel::new(1),
        latency: LatencyModel::new(1),
    };
    let mut swarm = Swarm::new(mini_cfg(1, 1), env, mini_setup(20));
    swarm.set_faults(&netaware_faults::FaultPlan::from_flags(None, None, true));

    // Pick an external neighbor of probe 0 (peers: source, 4 probes,
    // then externals — so any neighbor with id >= 5 is external).
    let provider = swarm.core.probe_states[0]
        .disc
        .neighbors
        .iter()
        .map(|n| n.id)
        .find(|id| id.0 >= 5)
        .expect("bootstrap gave probe 0 an external neighbor");
    let chunk = ChunkId(123);
    swarm.core.probe_states[0].sched.pending.push(state::Pending {
        chunk,
        provider,
        deadline_us: 10_000_000,
    });
    let neighbors_before = swarm.core.probe_states[0].disc.neighbors.len();

    let mut sched = netaware_sim::Scheduler::new();
    let mut actions = behaviour::Actions::default();
    {
        let Swarm { core, stack, .. } = &mut swarm;
        let mut seq = dispatch::LaneSeqs::new(core.n_probes);
        let mut outbox = netaware_sim::Outbox::new();
        dispatch::deliver(
            core,
            stack,
            &mut sched,
            &mut actions,
            &mut seq,
            &mut outbox,
            netaware_sim::SimTime::from_ms(100),
            Event::Depart(provider),
            &dispatch::DispatchProf::disabled(),
        );
    }

    let s = &swarm.core.probe_states[0];
    assert!(
        s.sched.pending.iter().all(|p| p.provider != provider),
        "request still pending on a departed peer"
    );
    assert_eq!(s.rec.requeue, vec![chunk], "chunk must be promptly re-queued");
    assert_eq!(s.disc.neighbors.len(), neighbors_before - 1, "departed peer must be evicted");
    assert!(s.disc.neighbors.iter().all(|n| n.id != provider));
    assert_eq!(swarm.core.report.requests_requeued, 1);
    assert_eq!(swarm.core.report.peers_departed, 1);
    // The departed peer's return trip is scheduled.
    assert!(!sched.is_empty());
}

/// A churn-heavy run keeps streaming: peers depart and re-arrive, the
/// stranded requests are re-queued, and continuity stays non-degenerate.
#[test]
fn churned_swarm_recovers_and_reports() {
    let reg = mini_registry();
    let env = NetworkEnv {
        registry: &reg,
        paths: PathModel::new(21),
        latency: LatencyModel::new(21),
    };
    let mut swarm = Swarm::new(mini_cfg(60, 21), env, mini_setup(80));
    swarm.set_faults(&netaware_faults::FaultPlan::from_flags(Some(0.02), None, true));
    let (_, report) = swarm.run();
    assert!(report.peers_departed > 0, "no churn happened");
    assert!(report.peers_arrived > 0, "departed peers never came back");
    assert!(report.packets_dropped > 0, "loss coin never fired");
    assert!(report.chunks_delivered > 0, "stream starved entirely");
    assert!(
        report.continuity() > 0.5,
        "continuity collapsed: {}",
        report.continuity()
    );
}

// ---------- per-behaviour units (hand-built Ctx, no dispatcher) ----------

#[test]
fn discovery_tick_evicts_expired_neighbors() {
    let reg = mini_registry();
    let env = NetworkEnv {
        registry: &reg,
        paths: PathModel::new(31),
        latency: LatencyModel::new(31),
    };
    let mut swarm = Swarm::new(mini_cfg(1, 31), env, mini_setup(40));
    // Age out one external neighbor entry.
    swarm.core.probe_states[0]
        .disc
        .neighbors
        .iter_mut()
        .find(|n| n.id.0 >= 5)
        .expect("bootstrap gave probe 0 an external neighbor")
        .expires_us = 1;
    let now = netaware_sim::SimTime::from_secs(10);
    let mut actions = behaviour::Actions::default();
    {
        let Swarm { core, stack, .. } = &mut swarm;
        let mut ctx = behaviour::Ctx {
            core,
            actions: &mut actions,
            now,
        };
        stack.discovery.on_tick(&mut ctx, 0);
    }
    let s = &swarm.core.probe_states[0];
    assert!(
        s.disc.neighbors.iter().all(|n| n.expires_us > now.as_us()),
        "expired entry survived the tick"
    );
    assert!(actions.queue.is_empty(), "discovery tick must not emit actions");
}

#[test]
fn recovery_tick_times_out_overdue_requests() {
    let reg = mini_registry();
    let env = NetworkEnv {
        registry: &reg,
        paths: PathModel::new(32),
        latency: LatencyModel::new(32),
    };
    let mut swarm = Swarm::new(mini_cfg(1, 32), env, mini_setup(20));
    let provider = crate::peer::PeerId(6);
    swarm.core.probe_states[0].sched.pending.push(state::Pending {
        chunk: ChunkId(9),
        provider,
        deadline_us: 5_000,
    });
    let mut actions = behaviour::Actions::default();
    {
        let Swarm { core, stack, .. } = &mut swarm;
        let mut ctx = behaviour::Ctx {
            core,
            actions: &mut actions,
            now: netaware_sim::SimTime::from_secs(1),
        };
        stack.recovery.on_tick(&mut ctx, 0);
    }
    let s = &swarm.core.probe_states[0];
    assert!(s.sched.pending.is_empty(), "overdue request survived");
    let est = s
        .sched
        .est_bps
        .get(&provider)
        .copied()
        .expect("timed-out provider must get a punitive estimate");
    assert!(est <= 200_000, "punitive estimate too generous: {est}");
}

#[test]
fn scheduling_delivery_fills_buffer_once() {
    let reg = mini_registry();
    let env = NetworkEnv {
        registry: &reg,
        paths: PathModel::new(33),
        latency: LatencyModel::new(33),
    };
    let mut swarm = Swarm::new(mini_cfg(1, 33), env, mini_setup(20));
    let (to, from, chunk) = (crate::peer::PeerId(1), crate::peer::PeerId(0), ChunkId(5));
    let mut actions = behaviour::Actions::default();
    for _ in 0..2 {
        let Swarm { core, stack, .. } = &mut swarm;
        let mut ctx = behaviour::Ctx {
            core,
            actions: &mut actions,
            now: netaware_sim::SimTime::from_ms(500),
        };
        stack.scheduling.on_delivered(&mut ctx, to, from, chunk, 500_000);
    }
    let s = &swarm.core.probe_states[0];
    assert!(s.sched.bufmap.contains(chunk));
    assert_eq!(s.sched.delivered, 1, "duplicate delivery double-counted");
    assert_eq!(s.sched.est_bps.get(&from), Some(&500_000));
    assert_eq!(s.sched.last_provider, Some(from));
}

#[test]
fn announce_tick_emits_buffer_maps() {
    let reg = mini_registry();
    let env = NetworkEnv {
        registry: &reg,
        paths: PathModel::new(34),
        latency: LatencyModel::new(34),
    };
    let mut swarm = Swarm::new(mini_cfg(1, 34), env, mini_setup(40));
    let before = swarm.core.report.signal_packets;
    let mut actions = behaviour::Actions::default();
    {
        let Swarm { core, stack, .. } = &mut swarm;
        let mut ctx = behaviour::Ctx {
            core,
            actions: &mut actions,
            now: netaware_sim::SimTime::from_secs(1),
        };
        stack.announce.on_tick(&mut ctx, 0);
    }
    assert!(
        swarm.core.report.signal_packets > before,
        "announce tick emitted no signalling"
    );
}

/// The dispatcher must run custom behaviours (after the built-ins) on
/// every event, without any dispatcher or state-core change.
#[test]
fn dispatcher_runs_custom_behaviours() {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    struct TickSpy {
        ticks: Arc<AtomicU64>,
    }
    impl Behaviour for TickSpy {
        fn on_tick(&mut self, _ctx: &mut Ctx<'_, '_>, _i: usize) {
            self.ticks.fetch_add(1, Ordering::Relaxed);
        }
    }

    let reg = mini_registry();
    let env = NetworkEnv {
        registry: &reg,
        paths: PathModel::new(35),
        latency: LatencyModel::new(35),
    };
    let mut swarm = Swarm::new(mini_cfg(1, 35), env, mini_setup(20));
    let ticks = Arc::new(AtomicU64::new(0));
    swarm.push_behaviour(Box::new(TickSpy { ticks: ticks.clone() }));

    let mut sched = netaware_sim::Scheduler::new();
    let mut actions = behaviour::Actions::default();
    {
        let Swarm { core, stack, .. } = &mut swarm;
        let mut seq = dispatch::LaneSeqs::new(core.n_probes);
        let mut outbox = netaware_sim::Outbox::new();
        dispatch::deliver(
            core,
            stack,
            &mut sched,
            &mut actions,
            &mut seq,
            &mut outbox,
            netaware_sim::SimTime::from_ms(100),
            Event::Tick(0),
            &dispatch::DispatchProf::disabled(),
        );
    }
    assert_eq!(ticks.load(Ordering::Relaxed), 1, "custom behaviour hook not dispatched");
}

/// Attaching the no-op plan must leave the run byte-identical to never
/// attaching one (the structural zero-draw guarantee).
#[test]
fn noop_fault_plan_is_byte_identical_to_no_plan() {
    let run = |attach_noop: bool| {
        let reg = mini_registry();
        let env = NetworkEnv {
            registry: &reg,
            paths: PathModel::new(5),
            latency: LatencyModel::new(5),
        };
        let mut swarm = Swarm::new(mini_cfg(20, 5), env, mini_setup(40));
        if attach_noop {
            swarm.set_faults(&netaware_faults::FaultPlan::none());
        }
        swarm.run()
    };
    let (a, ra) = run(true);
    let (b, rb) = run(false);
    assert_eq!(ra.chunks_delivered, rb.chunks_delivered);
    assert_eq!(ra.signal_packets, rb.signal_packets);
    for (ta, tb) in a.traces.iter().zip(&b.traces) {
        assert_eq!(ta.records_unsorted(), tb.records_unsorted());
    }
}

//! Discovery behaviour: tracker contact, neighbor probing, halo contacts.
//!
//! Owns the neighbor-acquisition side of the protocol: the per-tick
//! neighbor-table top-up, the AS-/bandwidth-biased tracker sampling
//! (previously the `try_discover_neighbor` free function leaking out of
//! `handlers.rs`), and the signalling-only "halo" contacts that make
//! PPLive's contacted-peer population enormous. Its per-probe state
//! slice is [`DiscoveryState`](super::state::DiscoveryState): the
//! neighbor table and the halo contact rate.

use super::behaviour::{Behaviour, Ctx};
use super::state::{DiscoveryTables, Neighbor};
use crate::message::Signal;
use crate::peer::PeerId;
use crate::profiles::AppProfile;
use netaware_faults::TrackerOutage;
use netaware_obs::Level;
use netaware_sim::{PacketFate, SimTime};
use netaware_trace::PayloadKind;

/// The discovery behaviour and its profile-derived parameters.
#[derive(Clone)]
pub(crate) struct Discovery {
    max_neighbors: usize,
    pub(crate) init_neighbors: usize,
    neighbor_lifetime_us: u64,
    per_tick: f64,
    as_boost: f64,
    bw_exponent: f64,
    peerlist_entries: u8,
    /// Alias buckets for discovery sampling: same-AS shortlists plus the
    /// global bandwidth-weighted candidate list (installed by `build`).
    pub(crate) tables: DiscoveryTables,
    /// Scheduled tracker outages (installed by `set_faults`): while one
    /// covers `now`, no new peers can be learned.
    pub(crate) outages: Vec<TrackerOutage>,
}

impl Discovery {
    pub(crate) fn from_profile(p: &AppProfile) -> Self {
        Discovery {
            max_neighbors: p.max_neighbors,
            init_neighbors: p.init_neighbors,
            neighbor_lifetime_us: p.neighbor_lifetime_us,
            per_tick: p.discovery_per_tick,
            as_boost: p.discovery_as_boost,
            bw_exponent: p.discovery_bw_exponent,
            peerlist_entries: p.peerlist_entries,
            tables: DiscoveryTables {
                ext_ids: Vec::new(),
                cum_weights: Vec::new(),
                by_as: std::collections::BTreeMap::new(),
            },
            outages: Vec::new(),
        }
    }

    /// Whether a configured tracker outage covers `now_us` (discovery
    /// is then impossible: departed neighbors cannot be replaced).
    fn tracker_down(&self, now_us: u64) -> bool {
        self.outages.iter().any(|w| w.covers(now_us))
    }

    /// Attempts to acquire one new external neighbor for probe `i`.
    /// Returns `true` on success. Also serves the dead-peer-replacement
    /// path: churn recovery emits a `Discover` action that the
    /// dispatcher routes here.
    pub(crate) fn try_discover(&mut self, ctx: &mut Ctx<'_, '_>, i: usize, now_us: u64) -> bool {
        let core = &mut *ctx.core;
        if core.probe_states[i].disc.neighbors.len() >= self.max_neighbors {
            return false;
        }
        // Scheduled tracker outage: the rendezvous point is unreachable,
        // so no new peers can be learned until the window closes.
        if self.tracker_down(now_us) {
            return false;
        }
        let pid = PeerId((1 + i) as u32);
        let my_asn = core.meta[pid.0 as usize].asn;

        // AS-biased discovery: with probability derived from the boost and
        // the same-AS population share, draw from the same-AS shortlist.
        let candidate = {
            let total = self.tables.ext_ids.len().max(1);
            let same_as_n = my_asn
                .and_then(|a| self.tables.by_as.get(&a))
                .map_or(0, |v| v.len());
            let f = same_as_n as f64 / total as f64;
            let b = self.as_boost;
            let q = if same_as_n == 0 {
                0.0
            } else {
                (b * f) / (b * f + (1.0 - f)).max(1e-12)
            };
            let s = &mut core.probe_states[i];
            if q > 0.0 && s.rng.chance(q) {
                my_asn.and_then(|a| self.tables.sample_in_as(a, &mut s.rng))
            } else if self.bw_exponent > 0.0 {
                self.tables.sample_bw(&mut s.rng)
            } else {
                self.tables.sample_uniform(&mut s.rng)
            }
        };
        let Some(cand) = candidate else { return false };

        // Departed peers are not discoverable until they rejoin.
        if core.is_offline(cand) {
            return false;
        }
        // Already a neighbor?
        if core.probe_states[i]
            .disc
            .neighbors
            .iter()
            .any(|n| n.id == cand)
        {
            return false;
        }
        // NAT traversal.
        {
            let nat = core.meta[cand.0 as usize].nat;
            let s = &mut core.probe_states[i];
            if nat && !s.rng.chance(0.7) {
                core.m.handshakes_refused.inc();
                netaware_obs::event!(
                    core.obs,
                    Level::Debug,
                    "swarm.discovery.handshake",
                    SimTime::from_us(now_us),
                    "probe" = i,
                    "peer" = cand.0,
                    "ok" = false,
                    "nat" = true,
                );
                return false;
            }
        }

        let lifetime = {
            let s = &mut core.probe_states[i];
            let mean = self.neighbor_lifetime_us as f64;
            (s.rng.exp(mean)).clamp(5e6, 20.0 * mean) as u64
        };

        // Handshake on the wire: either direction lost to a link fault
        // means no handshake and no neighbor entry.
        let now = SimTime::from_us(now_us);
        // `cand` is always external (sampled from the tracker tables),
        // so the sender-side half is the whole wire model.
        let Some(arrival) = core.signal_tx(now, pid, cand, Signal::Hello) else {
            return false;
        };
        let lat = core.delay_us(cand, pid);
        let reply_at = arrival + lat;
        let reply_at = match core.link_fate(i, reply_at.as_us()) {
            PacketFate::Dropped => return false,
            PacketFate::Pass { extra_delay_us } => reply_at + extra_delay_us,
        };
        core.probe_states[i].disc.neighbors.push(Neighbor {
            id: cand,
            expires_us: now_us.saturating_add(lifetime),
        });
        let ttl = core.ttl_to(cand, pid);
        core.capture(
            i,
            reply_at,
            cand,
            pid,
            Signal::Hello.wire_size(),
            ttl,
            PayloadKind::Signaling,
        );
        core.report.signal_packets += 1;
        core.m.handshakes_ok.inc();
        netaware_obs::event!(
            core.obs,
            Level::Debug,
            "swarm.discovery.handshake",
            now,
            "probe" = i,
            "peer" = cand.0,
            "ok" = true,
            "nat" = core.meta[cand.0 as usize].nat,
        );
        true
    }
}

impl Behaviour for Discovery {
    /// Neighbor churn: drop expired externals, top up via discovery.
    fn on_tick(&mut self, ctx: &mut Ctx<'_, '_>, i: usize) {
        let now_us = ctx.now().as_us();
        ctx.core.probe_states[i]
            .disc
            .neighbors
            .retain(|n| n.expires_us > now_us);
        let want = {
            let f = self.per_tick;
            let whole = f.floor() as usize;
            let frac = f - whole as f64;
            whole + usize::from(ctx.core.probe_states[i].rng.chance(frac))
        };
        for _ in 0..want {
            self.try_discover(ctx, i, now_us);
        }
    }

    /// Signalling-only discovery contact (the PPLive "halo").
    fn on_halo(&mut self, ctx: &mut Ctx<'_, '_>, i: usize) {
        let now = ctx.now();
        let pid = PeerId((1 + i) as u32);
        let rate = ctx.core.probe_states[i].disc.halo_rate_hz;
        if rate > 0.0 {
            let dt = ctx.core.probe_states[i].rng.exp(1.0 / rate);
            let dt_us = (dt * 1e6).clamp(1_000.0, 600_000_000.0) as u64;
            ctx.schedule(now + dt_us, super::state::Event::Halo(i as u32));
        }

        let core = &mut *ctx.core;
        let Some(target) = self.tables.sample_uniform(&mut core.probe_states[i].rng) else {
            return;
        };
        let entries = self.peerlist_entries;
        // `target` is always external (uniform tracker sample).
        let Some(arrival) = core.signal_tx(now, pid, target, Signal::Hello) else {
            return; // hello lost on the wire
        };
        // Departed peers are silent; NATted externals answer only if
        // the hole punch works.
        let replies = {
            let m = &core.meta[target.0 as usize];
            let nat = m.nat;
            let online = !core.is_offline(target);
            let s = &mut core.probe_states[i];
            online && (!nat || s.rng.chance(0.6))
        };
        if replies {
            let lat = core.delay_us(target, pid);
            let back = arrival + lat;
            // The reply crosses this probe's access link on the way in.
            let back = match core.link_fate(i, back.as_us()) {
                PacketFate::Dropped => return,
                PacketFate::Pass { extra_delay_us } => back + extra_delay_us,
            };
            let ttl = core.ttl_to(target, pid);
            core.capture(
                i,
                back,
                target,
                pid,
                Signal::PeerListReply(entries).wire_size(),
                ttl,
                PayloadKind::Signaling,
            );
            core.report.signal_packets += 1;
        }
    }
}

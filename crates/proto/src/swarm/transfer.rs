//! Chunk packetisation and packet-record emission.
//!
//! Everything that turns "peer X sends chunk c to peer Y" into timed,
//! TTL-stamped packet records in the probes' traces lives here. Packet
//! trains serialise on the sender's uplink (plus occasional background
//! cross-traffic for externals), propagate with the path's one-way delay,
//! and drain through the receiver's downlink — so the inter-packet gaps
//! a probe records genuinely encode the path bottleneck, which is the
//! signal the analysis' BW classifier extracts.

use super::behaviour::{Actions, BehaviourAction};
use super::state::{ChunkTrain, Event};
use super::SwarmCore;
use crate::message::Signal;
use crate::peer::PeerId;
use netaware_net::{ttl_at_receiver, DEFAULT_TTL};
use netaware_sim::{AccessSerializer, PacketFate, SimTime};
use netaware_trace::{PacketRecord, PayloadKind};

/// ADSL interleave window: packets draining within the same window reach
/// the host NIC as one burst.
const MODEM_BUCKET_US: u64 = 10_000;
/// Spacing of packets within a modem burst (host-side Ethernet speed).
const MODEM_BURST_GAP_US: u64 = 100;
/// Uplink backlog beyond which an external refuses to serve (upload
/// queue bound of real clients).
const EXT_BACKLOG_CAP_US: u64 = 2_000_000;

impl SwarmCore<'_> {
    /// Delivers a packet through a probe's downlink.
    ///
    /// The downlink paces each *flow* at its bottleneck: a packet from
    /// `from` arrives no earlier than one downlink transmission time
    /// after the previous packet of the same flow. Flows are not
    /// serialised against each other — deliveries from different
    /// providers arrive at independent (possibly far-future, if the
    /// provider is backlogged) times, and coupling them through one FIFO
    /// clock would let one slow provider's late burst fictitiously
    /// compress everyone else's inter-packet gaps.
    ///
    /// On low-bandwidth accesses the modem burst-coalescing model (ADSL
    /// interleaving) applies on top: packets draining within one
    /// interleave window reach the capture point back-to-back.
    pub(crate) fn deliver_to_probe(
        &mut self,
        probe_idx: usize,
        from: PeerId,
        reach: SimTime,
        size: u32,
    ) -> SimTime {
        let s = &mut self.probe_states[probe_idx];
        let tx = s.link.downlink.tx_time_us(size);
        let floor = s
            .link
            .last_rx_from
            .get(&from)
            .map_or(SimTime::ZERO, |&t| t + tx);
        let drain = reach.max(floor);
        s.link.last_rx_from.insert(from, drain);
        let Some(m) = &mut s.link.modem else {
            return drain;
        };
        let bucket = drain.as_us().div_ceil(MODEM_BUCKET_US);
        if m.bucket == bucket {
            m.count += 1;
        } else {
            m.bucket = bucket;
            m.count = 0;
        }
        SimTime::from_us(bucket * MODEM_BUCKET_US + m.count as u64 * MODEM_BURST_GAP_US)
    }

    /// One-way delay between two peers, µs.
    pub(crate) fn delay_us(&self, from: PeerId, to: PeerId) -> u64 {
        let a = self.meta[from.0 as usize].ip;
        let b = self.meta[to.0 as usize].ip;
        self.env.latency.one_way_us(self.env.registry, a, b)
    }

    /// TTL a packet from `from` carries when it reaches `to`.
    pub(crate) fn ttl_to(&self, from: PeerId, to: PeerId) -> u8 {
        let a = self.meta[from.0 as usize].ip;
        let b = self.meta[to.0 as usize].ip;
        ttl_at_receiver(self.env.paths.hops(self.env.registry, a, b))
    }

    /// Records a packet in probe `probe_idx`'s trace.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn capture(
        &mut self,
        probe_idx: usize,
        ts: SimTime,
        src: PeerId,
        dst: PeerId,
        size: u16,
        ttl: u8,
        kind: PayloadKind,
    ) {
        let sm = &self.meta[src.0 as usize];
        let dm = &self.meta[dst.0 as usize];
        self.traces[probe_idx].push(PacketRecord {
            ts_us: ts.as_us(),
            src: sm.ip,
            dst: dm.ip,
            sport: sm.port,
            dport: dm.port,
            size,
            ttl,
            kind,
        });
    }

    /// Sender-side half of a signalling packet `from → to`: TX capture
    /// (when the sender is a probe), the sender's link fate, and the
    /// propagation delay. Returns when the packet reaches the
    /// *receiver's access link*, or `None` when the sender's link ate it
    /// (the TX capture still materialises — tcpdump sits before the
    /// access link). The receiver's fate and RX capture are applied on
    /// the receiver's side: by [`SwarmCore::receive_signal`] for
    /// probe receivers (via [`Event::SignalRx`]), by the `Serve`
    /// preamble for chunk requests, and not at all for externals. The
    /// split is what lets the two endpoints live on different shards.
    pub(crate) fn signal_tx(
        &mut self,
        now: SimTime,
        from: PeerId,
        to: PeerId,
        sig: Signal,
    ) -> Option<SimTime> {
        let size = sig.wire_size();
        let sender_pi = self.probe_index(from);
        if let Some(pi) = sender_pi {
            // Captured leaving the sender: TTL still at its initial value.
            self.capture(pi, now, from, to, size, DEFAULT_TTL, PayloadKind::Signaling);
        }
        self.report.signal_packets += 1;
        let mut extra = 0u64;
        if let Some(pi) = sender_pi {
            match self.link_fate(pi, now.as_us()) {
                PacketFate::Dropped => return None,
                PacketFate::Pass { extra_delay_us } => extra = extra_delay_us,
            }
        }
        Some(now + self.delay_us(from, to) + extra)
    }

    /// Receiver-side half of probe-destined signalling: the receiving
    /// probe's link fate and RX capture, at the time the packet reached
    /// its access link.
    pub(crate) fn receive_signal(&mut self, now: SimTime, from: PeerId, to_idx: usize, size: u16) {
        match self.link_fate(to_idx, now.as_us()) {
            PacketFate::Dropped => {}
            PacketFate::Pass { extra_delay_us } => {
                let to = PeerId((1 + to_idx) as u32);
                let ttl = self.ttl_to(from, to);
                self.capture(
                    to_idx,
                    now + extra_delay_us,
                    from,
                    to,
                    size,
                    ttl,
                    PayloadKind::Signaling,
                );
            }
        }
    }

    /// Provider-side half of a probe-served chunk: packetises through
    /// the provider's uplink, captures TX records, applies the
    /// provider's link fates, and (when the requester is a probe)
    /// schedules the surviving packet train as an [`Event::ChunkRx`] on
    /// the requester — whose own shard applies its loss process,
    /// downlink queueing and RX captures in
    /// [`SwarmCore::receive_chunk_train`].
    pub(crate) fn probe_serve_chunk(
        &mut self,
        actions: &mut Actions,
        now: SimTime,
        provider: PeerId,
        to: PeerId,
        chunk: crate::chunk::ChunkId,
    ) {
        let stream = self.cfg.stream;
        let n_pkts = stream.packets_per_chunk();
        let lat = self.delay_us(provider, to);
        let prov_idx = self
            .probe_index(provider)
            .expect("probe_serve_chunk needs a probe provider"); // netaware-lint: allow(PA01) dispatch routes probe providers here only
        let to_probe = self.is_probe(to);

        let mut train = ChunkTrain {
            complete: true,
            pkts: Vec::with_capacity(n_pkts as usize),
        };
        for i in 0..n_pkts {
            let size = stream.packet_size(i) as u16;
            let dep = self.probe_states[prov_idx].link.uplink.enqueue(now, size as u32);
            self.capture(prov_idx, dep, provider, to, size, DEFAULT_TTL, PayloadKind::Video);
            // The packet crosses the provider's access link at `dep`; a
            // drop there means the chunk can never complete — the
            // requester's timeout + backoff re-request is the recovery
            // path. Surviving packets reach the requester's access link
            // one path delay later.
            match self.link_fate(prov_idx, dep.as_us()) {
                PacketFate::Dropped => train.complete = false,
                PacketFate::Pass { extra_delay_us } => {
                    train.pkts.push(((dep + lat + extra_delay_us).as_us(), size));
                }
            }
        }
        self.report.chunks_served_by_probes += 1;
        self.report.video_bytes_tx += stream.chunk_bytes as u64;

        if to_probe {
            if let Some(at_us) = train.pkts.iter().map(|p| p.0).min() {
                actions.queue.push_back(BehaviourAction::Schedule {
                    at: SimTime::from_us(at_us),
                    ev: Event::ChunkRx {
                        to,
                        from: provider,
                        chunk,
                        train: Box::new(train),
                    },
                });
            }
        }
    }

    /// Receiver-side half of a probe→probe chunk transfer: applies the
    /// receiving probe's link fates, drains packets through its
    /// downlink (per-flow pacing, modem coalescing), captures RX
    /// records, and — when every packet of the chunk survived both
    /// sides — schedules the [`Event::Delivered`] completion.
    pub(crate) fn receive_chunk_train(
        &mut self,
        actions: &mut Actions,
        to_idx: usize,
        from: PeerId,
        chunk: crate::chunk::ChunkId,
        train: &ChunkTrain,
    ) {
        let stream = self.cfg.stream;
        let to = PeerId((1 + to_idx) as u32);
        let ttl = self.ttl_to(from, to);
        let mut first_arrival = None;
        let mut last_arrival = SimTime::ZERO;
        let mut chunk_ok = train.complete;
        for &(reach_us, size) in &train.pkts {
            let down_extra = match self.link_fate(to_idx, reach_us) {
                PacketFate::Dropped => {
                    chunk_ok = false;
                    continue;
                }
                PacketFate::Pass { extra_delay_us } => extra_delay_us,
            };
            let reach = SimTime::from_us(reach_us) + down_extra;
            let a = self.deliver_to_probe(to_idx, from, reach, size as u32);
            self.capture(to_idx, a, from, to, size, ttl, PayloadKind::Video);
            first_arrival.get_or_insert(a);
            last_arrival = a;
        }
        if chunk_ok {
            let span = last_arrival.since(first_arrival.unwrap_or(last_arrival)).max(1);
            let est = (stream.chunk_bytes as u64 * 8).saturating_mul(1_000_000) / span;
            actions.queue.push_back(BehaviourAction::Schedule {
                at: last_arrival,
                ev: Event::Delivered {
                    to,
                    from,
                    chunk,
                    est_bps: est,
                },
            });
        }
    }

    /// Serves one chunk from an external provider to a probe requester.
    pub(crate) fn external_serve_chunk(
        &mut self,
        actions: &mut Actions,
        now: SimTime,
        provider: PeerId,
        to: PeerId,
        chunk: crate::chunk::ChunkId,
    ) {
        let stream = self.cfg.stream;
        let n_pkts = stream.packets_per_chunk();
        let lat = self.delay_us(provider, to);
        let ttl = self.ttl_to(provider, to);
        let to_idx = self
            .probe_index(to)
            .expect("external_serve_chunk requester must be a probe"); // netaware-lint: allow(PA01) only probes issue chunk requests

        // Real clients bound their upload queue: an external whose
        // uplink is already seconds behind refuses further requests (the
        // requester's timeout re-routes the chunk). This also keeps
        // departure times physically near the present. The serializer is
        // per-(probe, external): each probe sees its own copy of the
        // external's uplink, so the path stays a pure function of one
        // probe's state (the sharding contract; see `LinkState::ext_up`).
        if let Some(up) = self.probe_states[to_idx].link.ext_up.get(&provider) {
            if up.backlog_us(now) > EXT_BACKLOG_CAP_US {
                self.report.chunks_refused += 1;
                self.m.chunks_refused.inc();
                return;
            }
        }

        // Pre-draw the background cross-traffic pattern: the external
        // also uploads to peers we cannot see. A short burst ahead of
        // ours delays the train start; occasional interleaved packets
        // stretch some gaps (min-IPG still finds clean back-to-back
        // pairs).
        let (bg_before, bg_flags) = {
            let rng = &mut self.probe_states[to_idx].rng;
            let before = rng.range(0..3u32);
            let flags: Vec<bool> = (0..n_pkts).map(|_| rng.chance(0.08)).collect();
            (before, flags)
        };

        let up_bps = self.meta[provider.0 as usize].up_bps.max(1);
        let mut departures = Vec::with_capacity(n_pkts as usize);
        {
            let up = self.probe_states[to_idx]
                .link
                .ext_up
                .entry(provider)
                .or_insert_with(|| AccessSerializer::new(up_bps));
            for _ in 0..bg_before {
                up.enqueue(now, stream.packet_bytes);
            }
            for i in 0..n_pkts {
                if bg_flags[i as usize] {
                    up.enqueue(now, stream.packet_bytes); // interleaved bg
                }
                let size = stream.packet_size(i);
                departures.push((up.enqueue(now, size), size as u16));
            }
        }

        let mut first_arrival = None;
        let mut last_arrival = SimTime::ZERO;
        let mut chunk_ok = true;
        for (dep, size) in departures {
            let reach = dep + lat;
            // Only the probe's own access link is fault-modelled: the
            // external's link sits outside the observable path, so its
            // impairments are indistinguishable from capacity noise.
            let down_extra = match self.link_fate(to_idx, reach.as_us()) {
                PacketFate::Dropped => {
                    chunk_ok = false;
                    continue;
                }
                PacketFate::Pass { extra_delay_us } => extra_delay_us,
            };
            let arrival = self.deliver_to_probe(to_idx, provider, reach + down_extra, size as u32);
            self.capture(to_idx, arrival, provider, to, size, ttl, PayloadKind::Video);
            first_arrival.get_or_insert(arrival);
            last_arrival = arrival;
        }
        self.report.chunks_served_by_externals += 1;
        if !chunk_ok {
            // Incomplete chunk: the requester's pending entry rides out
            // its (backed-off) timeout and the chunk is re-requested.
            return;
        }

        let span = last_arrival.since(first_arrival.unwrap_or(last_arrival)).max(1);
        let est = (stream.chunk_bytes as u64 * 8).saturating_mul(1_000_000) / span;
        actions.queue.push_back(BehaviourAction::Schedule {
            at: last_arrival,
            ev: Event::Delivered {
                to,
                from: provider,
                chunk,
                est_bps: est,
            },
        });
    }

    /// Serves one chunk from probe `prov_idx` to an external requester
    /// (demand path): only TX records materialise.
    pub(crate) fn probe_serve_external(
        &mut self,
        now: SimTime,
        provider: PeerId,
        to: PeerId,
    ) -> bool {
        let prov_idx = self.probe_index(provider).expect("provider must be probe"); // netaware-lint: allow(PA01) halo path picks probe providers only
        // Refuse when the uplink backlog is past the cap — the real
        // clients stop accepting requests when saturated.
        if self.probe_states[prov_idx].link.uplink.backlog_us(now)
            > self.cfg.profile.upload_backlog_cap_us
        {
            self.report.chunks_refused += 1;
            self.m.chunks_refused.inc();
            return false;
        }
        let Some(chunk) = ({
            let s = &mut self.probe_states[prov_idx];
            let pick = s.rng.next_u64() as u32;
            sample_held(&s.sched.bufmap, pick)
        }) else {
            self.report.chunks_refused += 1;
            self.m.chunks_refused.inc();
            return false;
        };
        let _ = chunk;
        let stream = self.cfg.stream;
        for i in 0..stream.packets_per_chunk() {
            let size = stream.packet_size(i) as u16;
            let dep = self.probe_states[prov_idx].link.uplink.enqueue(now, size as u32);
            self.capture(prov_idx, dep, provider, to, size, DEFAULT_TTL, PayloadKind::Video);
        }
        self.report.chunks_served_by_probes += 1;
        self.report.video_bytes_tx += stream.chunk_bytes as u64;
        true
    }
}

/// Picks a uniformly random held chunk from a buffer map.
pub(crate) fn sample_held(map: &crate::chunk::BufferMap, pick: u32) -> Option<crate::chunk::ChunkId> {
    let held = map.held();
    if held == 0 {
        return None;
    }
    let target = pick % held;
    let mut seen = 0;
    for off in 0..crate::chunk::BUFFER_WINDOW {
        let c = crate::chunk::ChunkId(map.base().0 + off);
        if map.contains(c) {
            if seen == target {
                return Some(c);
            }
            seen += 1;
        }
    }
    None
}

//! Ground-truth run report.
//!
//! Everything in here is *simulator truth* — counters the analysis side
//! must never see. Integration tests use the report to validate the
//! analysis (e.g. that inferred BW classes match the true access classes)
//! and to check stream health (a starving swarm would invalidate the
//! rate tables).

use netaware_net::Ip;
use serde::{Deserialize, Serialize};

/// Per-probe ground-truth counters.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct ProbePerf {
    /// Vantage point.
    pub probe: Ip,
    /// Chunks this probe received in time.
    pub delivered: u64,
    /// Chunks it lost to the playout deadline.
    pub lost: u64,
    /// Its per-probe continuity.
    pub continuity: f64,
}

/// Counters accumulated over one swarm run.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct SwarmReport {
    /// Chunks delivered to probes.
    pub chunks_delivered: u64,
    /// Chunks probes gave up on (playout deadline passed).
    pub chunks_lost: u64,
    /// Chunks probes uploaded (to anyone).
    pub chunks_served_by_probes: u64,
    /// Chunks externals uploaded to probes.
    pub chunks_served_by_externals: u64,
    /// Chunks sent unsolicited by the epidemic push behaviour (zero for
    /// pull-only profiles; a subset of `chunks_served_by_probes`).
    pub chunks_pushed: u64,
    /// Upload requests refused (backlog cap or nothing to send).
    pub chunks_refused: u64,
    /// Signalling packets emitted (both directions, all probes).
    pub signal_packets: u64,
    /// Video bytes probes transmitted.
    pub video_bytes_tx: u64,
    /// Total scheduler events dispatched.
    pub events_dispatched: u64,
    /// Packets eaten by injected link faults (loss coin + outages).
    pub packets_dropped: u64,
    /// External-peer departures (churn).
    pub peers_departed: u64,
    /// External-peer re-arrivals (churn).
    pub peers_arrived: u64,
    /// Pending requests re-queued because their provider departed.
    pub requests_requeued: u64,
    /// Per-probe breakdown (simulator truth; one row per vantage point).
    pub per_probe: Vec<ProbePerf>,
}

impl SwarmReport {
    /// Fraction of chunks that reached probes before their deadline
    /// (stream continuity; healthy runs sit above 0.9).
    pub fn continuity(&self) -> f64 {
        let total = self.chunks_delivered + self.chunks_lost;
        if total == 0 {
            return 1.0;
        }
        self.chunks_delivered as f64 / total as f64
    }

    /// Folds a shard worker's counters into this report (field-wise
    /// sum). `events_dispatched` is excluded — the dispatcher computes
    /// it from the schedulers, correcting for broadcast events every
    /// shard pops — and `per_probe` rows are built after the merge.
    pub(crate) fn absorb(&mut self, other: &SwarmReport) {
        debug_assert!(other.per_probe.is_empty());
        self.chunks_delivered += other.chunks_delivered;
        self.chunks_lost += other.chunks_lost;
        self.chunks_served_by_probes += other.chunks_served_by_probes;
        self.chunks_served_by_externals += other.chunks_served_by_externals;
        self.chunks_pushed += other.chunks_pushed;
        self.chunks_refused += other.chunks_refused;
        self.signal_packets += other.signal_packets;
        self.video_bytes_tx += other.video_bytes_tx;
        self.packets_dropped += other.packets_dropped;
        self.peers_departed += other.peers_departed;
        self.peers_arrived += other.peers_arrived;
        self.requests_requeued += other.requests_requeued;
    }

    /// The probe with the worst continuity, if any probes ran.
    pub fn worst_probe(&self) -> Option<&ProbePerf> {
        self.per_probe
            .iter()
            .min_by(|a, b| a.continuity.total_cmp(&b.continuity))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn continuity_of_empty_run_is_perfect() {
        assert_eq!(SwarmReport::default().continuity(), 1.0);
    }

    #[test]
    fn worst_probe_lookup() {
        let r = SwarmReport {
            per_probe: vec![
                ProbePerf { probe: Ip(1), delivered: 90, lost: 10, continuity: 0.9 },
                ProbePerf { probe: Ip(2), delivered: 99, lost: 1, continuity: 0.99 },
            ],
            ..Default::default()
        };
        let worst = r.worst_probe().unwrap();
        assert_eq!(worst.probe, Ip(1));
    }

    #[test]
    fn continuity_ratio() {
        let r = SwarmReport {
            chunks_delivered: 90,
            chunks_lost: 10,
            ..Default::default()
        };
        assert!((r.continuity() - 0.9).abs() < 1e-12);
    }
}

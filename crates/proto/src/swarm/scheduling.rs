//! Scheduling behaviour: chunk request/serve/deliver with
//! policy-weighted provider selection.
//!
//! Owns the data-plane decisions: playout bookkeeping (chunk expiry at
//! the playout deadline), which missing chunks to request from whom
//! (the [`SelectionPolicy`]-weighted draft that encodes each
//! application's network awareness), serving incoming requests, and
//! the upload side's demand process. Its per-probe state slice is
//! [`SchedulingState`](super::state::SchedulingState).

use super::behaviour::{Behaviour, Ctx};
use super::state::{Event, Pending};
use crate::chunk::ChunkId;
use crate::message::Signal;
use crate::peer::{PeerId, PeerRole};
use crate::policy::{Candidate, SelectionPolicy};
use crate::profiles::AppProfile;
use netaware_obs::Level;
use netaware_sim::PacketFate;
use netaware_trace::PayloadKind;

/// Real clients rarely pull from the source itself once the swarm is
/// warm; this factor keeps the source as a fallback, not a favourite.
const SOURCE_WEIGHT_FACTOR: f64 = 0.05;
/// Upload stickiness pool size.
const ACTIVE_REQUESTER_CAP: usize = 48;

/// The scheduling behaviour and its profile-derived parameters.
#[derive(Clone)]
pub(crate) struct Scheduling {
    download_policy: SelectionPolicy,
    upload_policy: SelectionPolicy,
    exploration: f64,
    max_parallel_requests: usize,
    request_timeout_us: u64,
    buffer_delay_chunks: u32,
    demand_stickiness: f64,
    upload_backlog_cap_us: u64,
}

impl Scheduling {
    pub(crate) fn from_profile(p: &AppProfile) -> Self {
        Scheduling {
            download_policy: p.download_policy,
            upload_policy: p.upload_policy,
            exploration: p.exploration,
            max_parallel_requests: p.max_parallel_requests,
            request_timeout_us: p.request_timeout_us,
            buffer_delay_chunks: p.buffer_delay_chunks,
            demand_stickiness: p.demand_stickiness,
            upload_backlog_cap_us: p.upload_backlog_cap_us,
        }
    }

    /// Selects a provider for `chunk` and fires the request.
    fn request_chunk(
        &mut self,
        ctx: &mut Ctx<'_, '_>,
        i: usize,
        pid: PeerId,
        chunk: ChunkId,
    ) {
        let now = ctx.now();
        let now_us = now.as_us();
        let core = &mut *ctx.core;
        let my = core.meta[pid.0 as usize].clone();

        // Gather candidates that plausibly hold the chunk.
        let mut cand_ids: Vec<PeerId> = Vec::new();
        let mut weights: Vec<f64> = Vec::new();
        let mut untried: Vec<PeerId> = Vec::new();
        {
            let s = &core.probe_states[i];
            let chunk_ready_us = core.cfg.stream.chunk_time_us(chunk);
            for n in &s.disc.neighbors {
                let id = n.id;
                // Departed externals are scrubbed from neighbor tables
                // eagerly, but a same-tick departure can race the scan.
                if core.is_offline(id) {
                    continue;
                }
                let available = match core.peers[id.0 as usize].role {
                    PeerRole::Source => true,
                    PeerRole::Probe => {
                        // Playout-position heuristic, not the remote
                        // buffer map: probe `q` fetches `2 + lag_q`
                        // chunks behind the live head, so a chunk is
                        // plausibly held once the stream has advanced
                        // that far past it. Real clients guess from
                        // (stale) buffer-map gossip the same way; the
                        // provider's authoritative `has` check at serve
                        // time refuses misses. Crucially this reads only
                        // the remote's *static* lag, never its live
                        // state — a request can be priced without
                        // looking across a shard boundary.
                        let qi = id.0 as usize - 1;
                        let lag = core.probe_states[qi].sched.fetch_lag_chunks;
                        core.cfg.stream.chunk_time_us(ChunkId(chunk.0 + 2 + lag)) <= now_us
                    }
                    PeerRole::External => {
                        let m = &core.meta[id.0 as usize];
                        chunk_ready_us + m.lag_us <= now_us
                    }
                };
                if !available {
                    continue;
                }
                let m = &core.meta[id.0 as usize];
                let cand = Candidate {
                    est_up_bps: s.sched.est_bps.get(&id).copied(),
                    same_subnet: m.ip.same_subnet(my.ip),
                    same_as: m.asn.is_some() && m.asn == my.asn,
                    same_cc: m.cc.is_some() && m.cc == my.cc,
                    is_last_provider: s.sched.last_provider == Some(id),
                };
                let mut w = self.download_policy.weight(&cand);
                if core.peers[id.0 as usize].role == PeerRole::Source {
                    w *= SOURCE_WEIGHT_FACTOR;
                }
                cand_ids.push(id);
                weights.push(w);
                if cand.est_up_bps.is_none()
                    && core.peers[id.0 as usize].role == PeerRole::External
                {
                    untried.push(id);
                }
            }
        }
        if cand_ids.is_empty() {
            // Nobody reachable has it. The chunk stays missing, so the
            // next tick's scan retries it — and if it got here via the
            // requeue path (sole provider departed), churn recovery
            // already pulled it out of `pending`, so the scan *will* see
            // it rather than treating it as still in flight.
            return;
        }

        let s = &mut core.probe_states[i];
        let provider = if !untried.is_empty() && s.rng.chance(self.exploration) {
            untried[s.rng.range(0..untried.len())]
        } else {
            match s.rng.pick_weighted(&weights) {
                Some(k) => cand_ids[k],
                None => cand_ids[s.rng.range(0..cand_ids.len())],
            }
        };

        // Retransmit timer with exponential backoff: each repeat attempt
        // for the same chunk doubles the timeout (capped at 8×), so a
        // lossy path is given progressively longer to complete a train
        // instead of being hammered at the base RTO.
        let attempt = {
            let a = s.rec.attempts.entry(chunk).or_insert(0);
            let prev = *a;
            *a = a.saturating_add(1);
            prev
        };
        let timeout_us = self.request_timeout_us << attempt.min(3);
        s.sched.pending.push(Pending {
            chunk,
            provider,
            deadline_us: now_us + timeout_us,
        });
        core.m.chunks_requested.inc();
        netaware_obs::event!(
            core.obs,
            Level::Debug,
            "swarm.scheduling.chunk_sched",
            now,
            "probe" = i,
            "chunk" = chunk.0,
            "provider" = provider.0,
            "candidates" = cand_ids.len(),
        );
        // A lost request packet simply never reaches the provider: the
        // pending entry rides out its timeout and the chunk is retried.
        // Only the *sender's* half runs here; a probe provider charges
        // its own inbound fate and capture in the `Serve` preamble (on
        // its own shard), external providers have no modelled inbound
        // link.
        if let Some(arrival) = core.signal_tx(now, pid, provider, Signal::ChunkRequest(chunk)) {
            ctx.schedule(
                arrival,
                Event::Serve {
                    provider,
                    to: pid,
                    chunk,
                    deferred: false,
                },
            );
        }
    }
}

impl Behaviour for Scheduling {
    /// Playout bookkeeping and chunk requests.
    fn on_tick(&mut self, ctx: &mut Ctx<'_, '_>, i: usize) {
        let now = ctx.now();
        let now_us = now.as_us();
        let pid = PeerId((1 + i) as u32);
        // Before the stream's first chunk exists there is nothing to
        // schedule (the dispatcher keeps the tick clock running).
        let Some(head) = ctx.core.cfg.stream.head_at(now_us) else {
            return;
        };
        // This probe's fetch frontier sits `2 + fetch_lag` chunks behind
        // the source head (brand-new chunks exist only at the source;
        // staggered lags put probes at different playout positions), and
        // its buffer window extends `buffer_delay` chunks further back.
        let fetch_lag = ctx.core.probe_states[i].sched.fetch_lag_chunks;
        let frontier = ChunkId(head.0.saturating_sub(2 + fetch_lag));
        let playhead = ChunkId(frontier.0.saturating_sub(self.buffer_delay_chunks));

        {
            let core = &mut *ctx.core;
            let s = &mut core.probe_states[i];
            // Chunks that fell behind the playout deadline are lost.
            if playhead.0 > s.sched.bufmap.base().0 {
                let lost = s
                    .sched
                    .bufmap
                    .missing_in(s.sched.bufmap.base(), ChunkId(playhead.0 - 1))
                    .count() as u64;
                s.sched.lost += lost;
                s.sched.bufmap.advance_base(playhead);
                // Chunks behind the playhead can never be requested
                // again: drop their retry-backoff bookkeeping.
                s.rec.attempts = s.rec.attempts.split_off(&playhead);
                if lost > 0 {
                    core.m.chunks_expired.add(lost);
                    netaware_obs::event!(
                        core.obs,
                        Level::Debug,
                        "swarm.scheduling.chunk_expired",
                        now,
                        "probe" = i,
                        "lost" = lost,
                    );
                }
            }
        }

        // Issue requests for missing chunks, oldest-deadline-first.
        // Re-queued chunks (provider departed mid-request) go first:
        // they were already scheduled once, so their playout deadline is
        // nearest.
        let target = ChunkId(frontier.0.max(playhead.0));
        let budget = self
            .max_parallel_requests
            .saturating_sub(ctx.core.probe_states[i].sched.pending.len());
        if budget > 0 {
            let missing: Vec<ChunkId> = {
                let s = &mut ctx.core.probe_states[i];
                let mut list: Vec<ChunkId> = Vec::new();
                for c in std::mem::take(&mut s.rec.requeue) {
                    if c.0 >= playhead.0
                        && !s.sched.bufmap.contains(c)
                        && !s.sched.pending.iter().any(|p| p.chunk == c)
                        && !list.contains(&c)
                    {
                        list.push(c);
                    }
                }
                let scan: Vec<ChunkId> = s
                    .sched
                    .bufmap
                    .missing_in(playhead, target)
                    .filter(|c| {
                        !s.sched.pending.iter().any(|p| p.chunk == *c) && !list.contains(c)
                    })
                    .collect();
                list.extend(scan);
                list.truncate(budget);
                list
            };
            for chunk in missing {
                self.request_chunk(ctx, i, pid, chunk);
            }
        }
    }

    /// A chunk request reached its provider: serve or refuse.
    fn on_serve(&mut self, ctx: &mut Ctx<'_, '_>, provider: PeerId, to: PeerId, chunk: ChunkId) {
        let now = ctx.now();
        let Ctx { core, actions, .. } = ctx;
        let core = &mut **core;
        // Mid-transfer crash: the provider departed after the request
        // was sent but before it arrived. Nothing is served; the
        // requester recovers via the re-queue (if the departure was
        // seen) or its request timeout.
        if core.is_offline(provider) {
            core.report.chunks_refused += 1;
            core.m.chunks_refused.inc();
            return;
        }
        match core.peers[provider.0 as usize].role {
            PeerRole::Probe => {
                let pi = provider.0 as usize - 1;
                let has = core.probe_states[pi].sched.bufmap.contains(chunk);
                let backlog_ok =
                    core.probe_states[pi].link.uplink.backlog_us(now) <= self.upload_backlog_cap_us;
                if has && backlog_ok {
                    core.probe_serve_chunk(actions, now, provider, to, chunk);
                } else {
                    core.report.chunks_refused += 1;
                    core.m.chunks_refused.inc();
                    netaware_obs::event!(
                        core.obs,
                        Level::Debug,
                        "swarm.scheduling.serve_refused",
                        now,
                        "provider" = provider.0,
                        "chunk" = chunk.0,
                        "has" = has,
                    );
                }
            }
            PeerRole::Source | PeerRole::External => {
                // The source always has the chunk; externals were
                // availability-checked at request time (their lag only
                // shrinks relative to a fixed chunk).
                core.external_serve_chunk(actions, now, provider, to, chunk);
            }
        }
    }

    /// Download-side bookkeeping of a completed delivery (the recovery
    /// behaviour clears its own retry/requeue slice first).
    fn on_delivered(
        &mut self,
        ctx: &mut Ctx<'_, '_>,
        to: PeerId,
        from: PeerId,
        chunk: ChunkId,
        est: u64,
    ) {
        let core = &mut *ctx.core;
        let Some(ti) = core.probe_index(to) else {
            return;
        };
        let s = &mut core.probe_states[ti];
        s.sched.pending.retain(|p| p.chunk != chunk);
        if !s.sched.bufmap.contains(chunk) && chunk.0 >= s.sched.bufmap.base().0 {
            s.sched.bufmap.insert(chunk);
            s.sched.delivered += 1;
        } else {
            // Duplicate or stale delivery (already held, or behind the
            // playout base): the bytes were wasted.
            core.m.chunks_duplicate.inc();
        }
        s.sched.est_bps.insert(from, est);
        s.sched.last_provider = Some(from);
    }

    /// Aggregate external demand on probe `i`: one chunk request arrives.
    fn on_demand(&mut self, ctx: &mut Ctx<'_, '_>, i: usize) {
        let now = ctx.now();
        let pid = PeerId((1 + i) as u32);

        // Schedule the next arrival first (Poisson process).
        let rate = ctx.core.probe_states[i].sched.demand_rate_hz;
        if rate > 0.0 {
            let dt = ctx.core.probe_states[i].rng.exp(1.0 / rate);
            let dt_us = (dt * 1e6).clamp(1_000.0, 120_000_000.0) as u64;
            ctx.schedule(now + dt_us, Event::Demand(i as u32));
        }

        let core = &mut *ctx.core;
        // Pick the requester.
        let my = core.meta[pid.0 as usize].clone();
        let requester = {
            let sticky = {
                let s = &mut core.probe_states[i];
                !s.sched.active_requesters.is_empty() && s.rng.chance(self.demand_stickiness)
            };
            if sticky {
                let s = &mut core.probe_states[i];
                let k = s.rng.range(0..s.sched.active_requesters.len());
                Some(s.sched.active_requesters[k])
            } else {
                // Weighted draft among external neighbors by the upload
                // policy's locality terms.
                let cands: Vec<PeerId> = core.probe_states[i]
                    .disc
                    .neighbors
                    .iter()
                    .map(|n| n.id)
                    .filter(|id| core.peers[id.0 as usize].role == PeerRole::External)
                    .collect();
                if cands.is_empty() {
                    None
                } else {
                    let weights: Vec<f64> = cands
                        .iter()
                        .map(|id| {
                            let m = &core.meta[id.0 as usize];
                            self.upload_policy.weight(&Candidate {
                                est_up_bps: None,
                                same_subnet: m.ip.same_subnet(my.ip),
                                same_as: m.asn.is_some() && m.asn == my.asn,
                                same_cc: m.cc.is_some() && m.cc == my.cc,
                                is_last_provider: false,
                            })
                        })
                        .collect();
                    let s = &mut core.probe_states[i];
                    let pick = s
                        .rng
                        .pick_weighted(&weights)
                        .unwrap_or_else(|| s.rng.range(0..cands.len()));
                    let r = cands[pick];
                    if !s.sched.active_requesters.contains(&r) {
                        if s.sched.active_requesters.len() >= ACTIVE_REQUESTER_CAP {
                            let evict = s.rng.range(0..s.sched.active_requesters.len());
                            s.sched.active_requesters.swap_remove(evict);
                        }
                        s.sched.active_requesters.push(r);
                    }
                    Some(r)
                }
            }
        };
        let Some(requester) = requester else { return };

        // The request packet arrives at the probe now — unless the
        // probe's access link eats it (the external retries on its own
        // schedule, which the Poisson demand process already models).
        let now = match core.link_fate(i, now.as_us()) {
            PacketFate::Dropped => return,
            PacketFate::Pass { extra_delay_us } => now + extra_delay_us,
        };
        let ttl = core.ttl_to(requester, pid);
        core.capture(
            i,
            now,
            requester,
            pid,
            Signal::ChunkRequest(ChunkId(0)).wire_size(),
            ttl,
            PayloadKind::Signaling,
        );
        core.report.signal_packets += 1;

        core.probe_serve_external(now, pid, requester);
    }
}

//! Epidemic chunk-diffusion behaviour: sender-driven push policies.
//!
//! Mathieu & Perino ("On Resource Aware Algorithms in Epidemic Live
//! Streaming") study chunk diffusion where the *holder* of a chunk
//! pushes it onward instead of waiting to be asked. This module is that
//! family as an optional built-in behaviour: on every protocol tick the
//! probe picks a target among its live neighbors — uniformly for the
//! **random-peer** policy, biased by upstream capacity for the
//! **bandwidth-aware** variant — and pushes the *latest useful* chunk it
//! holds (the newest buffered chunk the target plausibly lacks, per the
//! same static playout-lag heuristic the pull scheduler prices requests
//! with).
//!
//! ## Determinism and sharding
//!
//! The push draws ride the pusher's private probe stream
//! ([`Ctx::probe_rng`]-equivalent), so a profile without a push policy
//! (`AppProfile::push == None`) consumes zero extra draws and stays
//! byte-identical to the pre-epidemic engine — the paper-profile golden
//! fingerprints pin that. The behaviour is a true built-in: shard
//! replicas clone it (it is pure configuration), every push happens
//! while handling the pusher's own `Tick` lane, and transfers reuse the
//! two-sided `probe_serve_chunk` path, so sharded runs remain
//! byte-identical to serial ones.

use super::behaviour::{Behaviour, Ctx};
use crate::chunk::{ChunkId, BUFFER_WINDOW};
use crate::peer::{PeerId, PeerRole};
use crate::profiles::PushPolicy;
use netaware_obs::Level;

/// The epidemic push behaviour (see the module docs). Pure
/// configuration — cloning it replicates the policy, not mid-run state.
#[derive(Clone, Debug)]
pub(crate) struct EpidemicPush {
    /// Push attempts per protocol tick.
    pushes_per_tick: u32,
    /// Exponent biasing target choice toward high-upstream neighbors;
    /// `0.0` is the uniform random-peer policy.
    bw_exponent: f64,
    /// Uplink backlog (µs) above which the pusher sits a tick out.
    backlog_cap_us: u64,
}

impl EpidemicPush {
    /// Builds the behaviour from a profile's push policy.
    pub(crate) fn from_policy(policy: &PushPolicy, backlog_cap_us: u64) -> Self {
        EpidemicPush {
            pushes_per_tick: policy.pushes_per_tick,
            bw_exponent: policy.bw_exponent,
            backlog_cap_us,
        }
    }
}

impl Behaviour for EpidemicPush {
    fn name(&self) -> &'static str {
        "epidemic"
    }

    /// One push round: pick a target (uniform or bandwidth-weighted),
    /// find the latest chunk in the local buffer the target plausibly
    /// lacks, and send it through the provider-side transfer path.
    fn on_tick(&mut self, ctx: &mut Ctx<'_, '_>, i: usize) {
        let now = ctx.now();
        let now_us = now.as_us();
        let pusher = PeerId(1 + i as u32);
        let core = &mut *ctx.core;
        let actions = &mut *ctx.actions;
        if core.probe_states[i].sched.bufmap.held() == 0 {
            return; // nothing buffered yet (startup)
        }
        for _ in 0..self.pushes_per_tick {
            // A saturated uplink sits the round out, like the pull
            // serve path refusing requests past the backlog cap.
            if core.probe_states[i].link.uplink.backlog_us(now) > self.backlog_cap_us {
                return;
            }
            // Candidate targets: live neighbors (the source never needs
            // a push). Weights only matter for the bandwidth-aware
            // variant.
            let mut cand: Vec<PeerId> = Vec::new();
            for n in &core.probe_states[i].disc.neighbors {
                if core.peers[n.id.0 as usize].role == PeerRole::Source || core.is_offline(n.id) {
                    continue;
                }
                cand.push(n.id);
            }
            if cand.is_empty() {
                return;
            }
            let target = if self.bw_exponent == 0.0 {
                let k = core.probe_states[i].rng.range(0..cand.len());
                cand[k]
            } else {
                let weights: Vec<f64> = cand
                    .iter()
                    .map(|id| {
                        (core.meta[id.0 as usize].up_bps.max(1) as f64).powf(self.bw_exponent)
                    })
                    .collect();
                match core.probe_states[i].rng.pick_weighted(&weights) {
                    Some(k) => cand[k],
                    None => return,
                }
            };
            // Latest useful chunk: newest held chunk the target
            // plausibly lacks. Probes are priced by the same static
            // playout-lag heuristic the pull scheduler uses (never the
            // remote's live state — the sharding contract); externals by
            // their configured playout lag.
            let chunk = {
                let map = &core.probe_states[i].sched.bufmap;
                let base = map.base();
                let mut found = None;
                for off in (0..BUFFER_WINDOW).rev() {
                    let c = ChunkId(base.0 + off);
                    if !map.contains(c) {
                        continue;
                    }
                    let useful = match core.peers[target.0 as usize].role {
                        PeerRole::Probe => {
                            let qi = target.0 as usize - 1;
                            let lag = core.probe_states[qi].sched.fetch_lag_chunks;
                            core.cfg.stream.chunk_time_us(ChunkId(c.0 + 2 + lag)) > now_us
                        }
                        PeerRole::External => {
                            let m = &core.meta[target.0 as usize];
                            core.cfg.stream.chunk_time_us(c) + m.lag_us > now_us
                        }
                        PeerRole::Source => false,
                    };
                    if useful {
                        found = Some(c);
                    }
                    // Held chunks older than the newest useful one are
                    // plausibly held by the target too — stop at the
                    // first (newest) useful hit.
                    if found.is_some() {
                        break;
                    }
                }
                found
            };
            let Some(chunk) = chunk else {
                continue; // target plausibly holds everything we do
            };
            core.report.chunks_pushed += 1;
            netaware_obs::event!(
                core.obs,
                Level::Debug,
                "swarm.epidemic.push",
                now,
                "probe" = i,
                "target" = target.0,
                "chunk" = chunk.0,
            );
            // Receiver-side dedup (`chunks_duplicate`) absorbs pushes
            // the heuristic mispriced, exactly like stale pull serves.
            core.probe_serve_chunk(actions, now, pusher, target, chunk);
        }
    }
}

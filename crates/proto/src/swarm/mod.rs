//! The swarm simulation: one experiment of one application.
//!
//! A [`Swarm`] wires together the network substrate, a population of
//! peers, and an [`crate::profiles::AppProfile`], runs the
//! mesh-pull protocol for the configured duration, and returns the packet
//! traces captured at the probe vantage points — exactly the artifact the
//! NAPA-WINE partners got from tcpdump — plus a ground-truth
//! [`SwarmReport`] for validation.
//!
//! ## Fidelity boundary
//!
//! Probes run the full protocol: buffer maps, provider selection, chunk
//! requests, upload scheduling, discovery, churn, signalling. External
//! peers are modelled *statistically* — their content availability is a
//! playout lag, their upload demand a Poisson process — because the
//! analysis can only observe traffic that touches a probe, so
//! external↔external dynamics matter only through what externals offer
//! to and demand from probes. This is the scale trick that lets a 181k
//! peer PPLive overlay run on a laptop while keeping every
//! probe-observable quantity (packet timing, TTLs, byte shares, peer
//! counts) behaviourally faithful.

mod faults;
mod handlers;
mod report;
mod state;
mod transfer;

pub use report::{ProbePerf, SwarmReport};
pub use state::{ExternalSpec, NetworkEnv, PeerSetup, ProbeSpec};

use crate::chunk::StreamParams;
use crate::peer::{PeerId, PeerInfo, PeerRole};
use crate::profiles::AppProfile;
use netaware_faults::FaultPlan;
use netaware_obs::{Counter, Gauge, HistogramMetric, Level, Obs};
use netaware_sim::{DetRng, Scheduler, SimTime};
use netaware_trace::{MemorySink, ProbeTrace, RecordSink, TraceError, TraceSet};
use state::{Event, ExtDynamic, PeerMeta, ProbeState};
use std::collections::BTreeMap;

/// Experiment-level configuration of one swarm run.
#[derive(Clone, Debug)]
pub struct SwarmConfig {
    /// Master seed; every random stream derives from it.
    pub seed: u64,
    /// Experiment duration in microseconds (the paper ran 1-hour
    /// experiments; tests use seconds).
    pub duration_us: u64,
    /// Stream encoding parameters.
    pub stream: StreamParams,
    /// Application behaviour.
    pub profile: AppProfile,
}

/// Pre-registered protocol metric handles, so the event loop's hot
/// paths pay one atomic add per update instead of a registry lookup.
/// Default handles (obs disabled) are no-ops.
#[derive(Default)]
pub(crate) struct SwarmMetrics {
    pub(crate) chunks_requested: Counter,
    pub(crate) chunks_duplicate: Counter,
    pub(crate) chunks_expired: Counter,
    pub(crate) requests_timed_out: Counter,
    pub(crate) chunks_refused: Counter,
    pub(crate) handshakes_ok: Counter,
    pub(crate) handshakes_refused: Counter,
    pub(crate) gossip_announcements: Counter,
    pub(crate) gossip_fanout: HistogramMetric,
    pub(crate) packets_dropped: Counter,
    pub(crate) requests_requeued: Counter,
    pub(crate) peers_departed: Counter,
    pub(crate) peers_arrived: Counter,
    pub(crate) continuity_permille: HistogramMetric,
    pub(crate) continuity_min_permille: Gauge,
}

impl SwarmMetrics {
    fn register(obs: &Obs) -> SwarmMetrics {
        SwarmMetrics {
            chunks_requested: obs.counter("proto.chunks_requested"),
            chunks_duplicate: obs.counter("proto.chunks_duplicate"),
            chunks_expired: obs.counter("proto.chunks_expired"),
            requests_timed_out: obs.counter("proto.requests_timed_out"),
            chunks_refused: obs.counter("proto.chunks_refused"),
            handshakes_ok: obs.counter("proto.handshakes_ok"),
            handshakes_refused: obs.counter("proto.handshakes_refused"),
            gossip_announcements: obs.counter("proto.gossip_announcements"),
            gossip_fanout: obs.histogram("proto.gossip_fanout", 128),
            packets_dropped: obs.counter("proto.packets_dropped"),
            requests_requeued: obs.counter("proto.requests_requeued"),
            peers_departed: obs.counter("proto.peers_departed"),
            peers_arrived: obs.counter("proto.peers_arrived"),
            continuity_permille: obs.histogram("proto.continuity_permille", 1001),
            continuity_min_permille: obs.gauge("proto.continuity_min_permille"),
        }
    }
}

/// A fully wired simulation, ready to run.
pub struct Swarm<'a> {
    pub(crate) cfg: SwarmConfig,
    pub(crate) env: NetworkEnv<'a>,
    /// Index 0 is the source, `1..=n_probes` the probes, the rest
    /// externals.
    pub(crate) peers: Vec<PeerInfo>,
    pub(crate) meta: Vec<PeerMeta>,
    pub(crate) n_probes: usize,
    pub(crate) probe_states: Vec<ProbeState>,
    pub(crate) ext_dyn: BTreeMap<PeerId, ExtDynamic>,
    pub(crate) traces: Vec<ProbeTrace>,
    pub(crate) rng: DetRng,
    pub(crate) report: SwarmReport,
    /// Alias buckets for discovery sampling: same-AS shortlists per probe
    /// plus the global bandwidth-weighted candidate list.
    pub(crate) discovery: state::DiscoveryTables,
    /// Observability handle; events it emits are keyed by sim time, so
    /// they ride the same determinism contract as the traces.
    pub(crate) obs: Obs,
    /// Pre-registered metric handles derived from `obs`.
    pub(crate) m: SwarmMetrics,
    /// Compiled fault-injection state; `None` (the default) means no
    /// fault machinery runs and no fault stream is ever consulted.
    pub(crate) faults: Option<faults::FaultRuntime>,
}

impl<'a> Swarm<'a> {
    /// Builds a swarm over `env` with the given population.
    pub fn new(cfg: SwarmConfig, env: NetworkEnv<'a>, setup: PeerSetup) -> Self {
        state::build(cfg, env, setup)
    }

    /// Number of probe vantage points.
    pub fn n_probes(&self) -> usize {
        self.n_probes
    }

    /// Attaches an observability handle: protocol events (`swarm.*`
    /// targets) and `proto.*` metrics flow into it from here on. The
    /// default handle is disabled, making all instrumentation no-ops.
    pub fn set_obs(&mut self, obs: Obs) {
        self.m = SwarmMetrics::register(&obs);
        self.obs = obs;
    }

    /// Attaches a fault-injection plan. A no-op plan (the default)
    /// installs nothing: the run stays byte-identical to one on a swarm
    /// that never heard of faults. Fault draws ride dedicated RNG
    /// streams, so attaching a plan never perturbs protocol streams.
    pub fn set_faults(&mut self, plan: &FaultPlan) {
        self.faults = faults::FaultRuntime::new(plan, self.cfg.seed, self.n_probes);
    }

    /// The peer table (source, probes, externals).
    pub fn peers(&self) -> &[PeerInfo] {
        &self.peers
    }

    /// Runs the experiment and returns the captured traces plus the
    /// ground-truth report.
    pub fn run(self) -> (TraceSet, SwarmReport) {
        match self.run_into(MemorySink::new()) {
            Ok(out) => out,
            // MemorySink::sink_probe / finish are infallible.
            Err(_) => unreachable!("in-memory sink cannot fail"),
        }
    }

    /// Runs the experiment, draining each probe's finalized capture into
    /// `sink` as it is collected — the capture is never held as a whole
    /// unless the sink chooses to (e.g. [`MemorySink`]); a spill-to-disk
    /// sink bounds peak memory to one probe's trace.
    pub fn run_into<S: RecordSink>(
        mut self,
        mut sink: S,
    ) -> Result<(S::Output, SwarmReport), TraceError> {
        self.execute();
        for mut trace in std::mem::take(&mut self.traces) {
            trace.finalize();
            sink.sink_probe(trace)?;
        }
        let out = sink.finish(&self.cfg.profile.name, self.cfg.duration_us)?;
        Ok((out, self.report))
    }

    /// The event loop: schedules the initial processes, dispatches until
    /// the horizon, and fills the ground-truth report. Captured records
    /// accumulate in `self.traces`, unsorted (transfers push
    /// future-timestamped receiver records).
    fn execute(&mut self) {
        let mut sched: Scheduler<Event> = Scheduler::new();
        let horizon = SimTime::from_us(self.cfg.duration_us);
        netaware_obs::event!(
            self.obs,
            Level::Info,
            "swarm.run",
            SimTime::ZERO,
            "app" = self.cfg.profile.name.as_str(),
            "probes" = self.n_probes,
            "peers" = self.peers.len(),
            "duration_us" = self.cfg.duration_us,
        );

        // Stagger initial ticks across one tick interval so probes do not
        // act in lockstep.
        let tick = self.cfg.profile.tick_us;
        for p in 0..self.n_probes {
            let offset = self.rng.range(0..tick.max(1));
            sched.push(SimTime::from_us(offset), Event::Tick(p as u32));
            // Demand and halo processes start once the stream exists.
            let warmup = self.cfg.stream.chunk_interval_us()
                * (self.cfg.profile.buffer_delay_chunks as u64 + 2);
            let d0 = warmup + self.rng.range(0..1_000_000);
            sched.push(SimTime::from_us(d0), Event::Demand(p as u32));
            if self.cfg.profile.halo_contacts_per_sec > 0.0 {
                let h0 = self.rng.range(0..2_000_000);
                sched.push(SimTime::from_us(h0), Event::Halo(p as u32));
            }
        }
        // Churn processes (no-op without a fault plan): every external
        // gets its first departure or arrival scheduled.
        self.init_churn(&mut sched);

        loop {
            match sched.peek_time() {
                Some(t) if t <= horizon => {}
                _ => break,
            }
            let Some((now, ev)) = sched.pop() else { break };
            self.handle(&mut sched, now, ev);
        }
        self.report.events_dispatched = sched.dispatched();
        let mut min_permille: i64 = 1000;
        for (i, s) in self.probe_states.iter().enumerate() {
            self.report.chunks_delivered += s.delivered;
            self.report.chunks_lost += s.lost;
            let total = s.delivered + s.lost;
            let continuity = if total == 0 {
                1.0
            } else {
                s.delivered as f64 / total as f64
            };
            // Surface the per-probe continuity index (graceful-degradation
            // signal under faults) through the obs layer: stored as
            // permille so the integer metrics pipeline carries it intact.
            let permille = (continuity * 1000.0).round() as u64;
            min_permille = min_permille.min(permille as i64);
            self.m.continuity_permille.record(permille as usize);
            netaware_obs::event!(
                self.obs,
                Level::Info,
                "swarm.continuity",
                horizon,
                "probe" = i,
                "permille" = permille,
                "delivered" = s.delivered,
                "lost" = s.lost,
            );
            self.report.per_probe.push(report::ProbePerf {
                probe: self.meta[1 + i].ip,
                delivered: s.delivered,
                lost: s.lost,
                continuity,
            });
        }
        self.m.continuity_min_permille.set(min_permille);
        netaware_obs::event!(
            self.obs,
            Level::Info,
            "swarm.done",
            horizon,
            "delivered" = self.report.chunks_delivered,
            "lost" = self.report.chunks_lost,
            "refused" = self.report.chunks_refused,
            "events" = self.report.events_dispatched,
        );
    }

    pub(crate) fn is_probe(&self, id: PeerId) -> bool {
        self.peers[id.0 as usize].role == PeerRole::Probe
    }

    pub(crate) fn probe_index(&self, id: PeerId) -> Option<usize> {
        self.is_probe(id).then(|| id.0 as usize - 1)
    }
}

#[cfg(test)]
mod tests;

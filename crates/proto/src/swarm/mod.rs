//! The swarm simulation: one experiment of one application.
//!
//! A [`Swarm`] wires together the network substrate, a population of
//! peers, and an [`crate::profiles::AppProfile`], runs the
//! mesh-pull protocol for the configured duration, and returns the packet
//! traces captured at the probe vantage points — exactly the artifact the
//! NAPA-WINE partners got from tcpdump — plus a ground-truth
//! [`SwarmReport`] for validation.
//!
//! ## Architecture: core + behaviour stack
//!
//! The protocol itself is a composition of typed, per-concern
//! [`Behaviour`] modules (discovery, announce, churn-recovery,
//! scheduling — see `behaviour.rs`), constructed from the profile by
//! [`AppProfile::stack`](crate::profiles::AppProfile::stack) and driven
//! by the deterministic dispatcher in `dispatch.rs`. The [`SwarmCore`]
//! underneath holds what every concern shares: peer tables, per-probe
//! state slices, the transfer machinery (`transfer.rs`), traces, and
//! observability.
//!
//! ## Fidelity boundary
//!
//! Probes run the full protocol: buffer maps, provider selection, chunk
//! requests, upload scheduling, discovery, churn, signalling. External
//! peers are modelled *statistically* — their content availability is a
//! playout lag, their upload demand a Poisson process — because the
//! analysis can only observe traffic that touches a probe, so
//! external↔external dynamics matter only through what externals offer
//! to and demand from probes. This is the scale trick that lets a 181k
//! peer PPLive overlay run on a laptop while keeping every
//! probe-observable quantity (packet timing, TTLs, byte shares, peer
//! counts) behaviourally faithful.

pub(crate) mod announce;
pub(crate) mod behaviour;
pub(crate) mod churn_recovery;
pub(crate) mod discovery;
pub(crate) mod dispatch;
pub(crate) mod epidemic;
mod report;
pub(crate) mod scheduling;
mod state;
pub(crate) mod transfer;

pub use behaviour::{Behaviour, BehaviourAction, BehaviourStack, Ctx};
pub use report::{ProbePerf, SwarmReport};
pub use state::{Event, ExternalSpec, NetworkEnv, PeerSetup, ProbeSpec};

use crate::chunk::StreamParams;
use crate::peer::{PeerId, PeerInfo, PeerRole};
use crate::profiles::AppProfile;
use netaware_faults::FaultPlan;
use netaware_obs::{Counter, Gauge, HistogramMetric, Level, Obs};
use netaware_sim::{DetRng, LinkFaults, PacketFate, SimTime};
use netaware_trace::{MemorySink, ProbeTrace, RecordSink, TraceError, TraceSet};
use state::{PeerMeta, ProbeState};
use std::collections::BTreeSet;
use std::sync::Arc;

/// Experiment-level configuration of one swarm run.
#[derive(Clone, Debug)]
pub struct SwarmConfig {
    /// Master seed; every random stream derives from it.
    pub seed: u64,
    /// Experiment duration in microseconds (the paper ran 1-hour
    /// experiments; tests use seconds).
    pub duration_us: u64,
    /// Stream encoding parameters.
    pub stream: StreamParams,
    /// Application behaviour.
    pub profile: AppProfile,
}

/// Pre-registered protocol metric handles, so the event loop's hot
/// paths pay one atomic add per update instead of a registry lookup.
/// Default handles (obs disabled) are no-ops.
#[derive(Default)]
pub(crate) struct SwarmMetrics {
    pub(crate) chunks_requested: Counter,
    pub(crate) chunks_duplicate: Counter,
    pub(crate) chunks_expired: Counter,
    pub(crate) requests_timed_out: Counter,
    pub(crate) chunks_refused: Counter,
    pub(crate) handshakes_ok: Counter,
    pub(crate) handshakes_refused: Counter,
    pub(crate) gossip_announcements: Counter,
    pub(crate) gossip_fanout: HistogramMetric,
    pub(crate) packets_dropped: Counter,
    pub(crate) requests_requeued: Counter,
    pub(crate) peers_departed: Counter,
    pub(crate) peers_arrived: Counter,
    pub(crate) continuity_permille: HistogramMetric,
    pub(crate) continuity_min_permille: Gauge,
}

impl SwarmMetrics {
    fn register(obs: &Obs) -> SwarmMetrics {
        SwarmMetrics {
            chunks_requested: obs.counter("proto.chunks_requested"),
            chunks_duplicate: obs.counter("proto.chunks_duplicate"),
            chunks_expired: obs.counter("proto.chunks_expired"),
            requests_timed_out: obs.counter("proto.requests_timed_out"),
            chunks_refused: obs.counter("proto.chunks_refused"),
            handshakes_ok: obs.counter("proto.handshakes_ok"),
            handshakes_refused: obs.counter("proto.handshakes_refused"),
            gossip_announcements: obs.counter("proto.gossip_announcements"),
            gossip_fanout: obs.histogram("proto.gossip_fanout", 128),
            packets_dropped: obs.counter("proto.packets_dropped"),
            requests_requeued: obs.counter("proto.requests_requeued"),
            peers_departed: obs.counter("proto.peers_departed"),
            peers_arrived: obs.counter("proto.peers_arrived"),
            continuity_permille: obs.histogram("proto.continuity_permille", 1001),
            continuity_min_permille: obs.gauge("proto.continuity_min_permille"),
        }
    }
}

/// Where a [`SwarmCore`] sits in the sharded engine. The default role
/// (no plan) is the unsharded core: it owns every probe and leads.
/// Shard replicas carry the plan, their index, and the per-shard
/// observability buffer used to tag emitted events with the scheduler
/// key of the handling that produced them.
#[derive(Clone, Default)]
pub(crate) struct ShardRole {
    /// The probe→shard assignment; `None` when unsharded.
    pub(crate) plan: Option<Arc<netaware_sim::ShardPlan>>,
    /// This core's shard index (0 when unsharded).
    pub(crate) idx: usize,
    /// The per-shard tagged event buffer, when obs events are collected.
    pub(crate) tag_sink: Option<Arc<netaware_obs::ShardBufferSink>>,
    /// Per-probe sub-emission counters, used to re-tag owned-probe
    /// emissions that happen while handling a *broadcast* (churn) event:
    /// every shard handles the same churn event, so its key alone would
    /// collide across shards; the owning probe's lane disambiguates.
    pub(crate) sub_seq: Vec<u32>,
    /// Set while a broadcast (churn) event is being handled.
    pub(crate) in_churn: bool,
}

/// Everything the behaviours share: peer tables, per-probe state
/// slices, trace capture, observability, and the fault substrate (link
/// impairment machines and the offline set — the *consequences* of
/// churn; the churn *process* lives in the churn-recovery behaviour).
pub(crate) struct SwarmCore<'a> {
    pub(crate) cfg: SwarmConfig,
    pub(crate) env: NetworkEnv<'a>,
    /// Index 0 is the source, `1..=n_probes` the probes, the rest
    /// externals. Read-only after build, shared across shard replicas.
    pub(crate) peers: Arc<Vec<PeerInfo>>,
    pub(crate) meta: Arc<Vec<PeerMeta>>,
    pub(crate) n_probes: usize,
    pub(crate) probe_states: Vec<ProbeState>,
    pub(crate) traces: Vec<ProbeTrace>,
    pub(crate) rng: DetRng,
    pub(crate) report: SwarmReport,
    /// Observability handle; events it emits are keyed by sim time, so
    /// they ride the same determinism contract as the traces.
    pub(crate) obs: Obs,
    /// Pre-registered metric handles derived from `obs`.
    pub(crate) m: SwarmMetrics,
    /// One impairment machine per probe access link (empty without link
    /// faults, so fault-free runs draw no link fates).
    pub(crate) links: Vec<LinkFaults>,
    /// Externals currently offline (written by churn recovery, read by
    /// discovery and scheduling).
    pub(crate) offline: BTreeSet<PeerId>,
    /// This core's place in the sharded engine (default: unsharded).
    pub(crate) shard: ShardRole,
}

impl SwarmCore<'_> {
    pub(crate) fn is_probe(&self, id: PeerId) -> bool {
        self.peers[id.0 as usize].role == PeerRole::Probe
    }

    pub(crate) fn probe_index(&self, id: PeerId) -> Option<usize> {
        self.is_probe(id).then(|| id.0 as usize - 1)
    }

    /// Fate of one packet crossing probe `idx`'s access link at `at_us`.
    /// Without link faults every packet passes undelayed, and no RNG is
    /// consulted.
    pub(crate) fn link_fate(&mut self, idx: usize, at_us: u64) -> PacketFate {
        if self.links.is_empty() {
            return PacketFate::Pass { extra_delay_us: 0 };
        }
        let fate = self.links[idx].packet_fate(at_us);
        if fate.is_dropped() {
            self.report.packets_dropped += 1;
            self.m.packets_dropped.inc();
        }
        fate
    }

    /// Whether `id` is currently offline (churned away).
    pub(crate) fn is_offline(&self, id: PeerId) -> bool {
        self.offline.contains(&id)
    }

    /// All external peers, in id order (the churn process's population).
    pub(crate) fn external_ids(&self) -> Vec<PeerId> {
        self.peers
            .iter()
            .filter(|p| p.role == PeerRole::External)
            .map(|p| p.id)
            .collect()
    }

    /// Whether this core is the authority for probe `idx`'s state.
    /// Unsharded cores own everything; shard replicas own their
    /// partition. Mutations to non-owned probe state are discarded at
    /// merge time, and the byte-identity contract forbids *reading*
    /// non-owned mutable state on owned paths.
    pub(crate) fn owns_probe(&self, idx: usize) -> bool {
        match &self.shard.plan {
            None => true,
            Some(plan) => plan.of_entity[idx] == self.shard.idx,
        }
    }

    /// Whether this core performs once-per-swarm work (global counters
    /// for broadcast events). Shard 0 leads; the unsharded core always
    /// does.
    pub(crate) fn is_leader(&self) -> bool {
        self.shard.idx == 0
    }

    /// Re-tags the per-shard obs buffer onto probe `idx`'s sub-emission
    /// lane when handling a broadcast (churn) event, so the same logical
    /// emission gets the same tag on every shard layout. No-op outside
    /// broadcast handling or when events are not collected.
    pub(crate) fn tag_probe_sub(&mut self, idx: usize, now: SimTime) {
        if !self.shard.in_churn {
            return;
        }
        if let Some(sink) = &self.shard.tag_sink {
            let seq = self.shard.sub_seq[idx];
            self.shard.sub_seq[idx] = seq.wrapping_add(1);
            sink.set_tag(now.as_us(), 1 + idx as u32, seq);
        }
    }
}

/// A fully wired simulation, ready to run: the shared core plus the
/// behaviour stack that *is* the protocol.
pub struct Swarm<'a> {
    pub(crate) core: SwarmCore<'a>,
    pub(crate) stack: BehaviourStack,
    /// Requested shard-worker count for the parallel engine (default 1).
    pub(crate) shards: usize,
}

impl<'a> Swarm<'a> {
    /// Builds a swarm over `env` with the given population.
    pub fn new(cfg: SwarmConfig, env: NetworkEnv<'a>, setup: PeerSetup) -> Self {
        state::build(cfg, env, setup)
    }

    /// Number of probe vantage points.
    pub fn n_probes(&self) -> usize {
        self.core.n_probes
    }

    /// Attaches an observability handle: protocol events
    /// (`swarm.<behaviour>.*` targets) and `proto.*` metrics flow into
    /// it from here on. The default handle is disabled, making all
    /// instrumentation no-ops.
    pub fn set_obs(&mut self, obs: Obs) {
        self.core.m = SwarmMetrics::register(&obs);
        self.core.obs = obs;
    }

    /// Attaches a fault-injection plan. A no-op plan (the default)
    /// installs nothing: the run stays byte-identical to one on a swarm
    /// that never heard of faults. Fault draws ride dedicated RNG
    /// streams, so attaching a plan never perturbs protocol streams.
    /// The pieces land where they are consumed: link machines and the
    /// offline set in the core, the churn process in the churn-recovery
    /// behaviour, tracker outages in the discovery behaviour.
    pub fn set_faults(&mut self, plan: &FaultPlan) {
        let seed = self.core.cfg.seed;
        self.core.offline.clear();
        if plan.is_noop() {
            self.core.links = Vec::new();
            self.stack
                .recovery
                .set_churn(None, netaware_faults::SessionModel::default(), seed);
            self.stack.discovery.outages = Vec::new();
            return;
        }
        self.core.links = if plan.link.is_noop() {
            Vec::new()
        } else {
            (0..self.core.n_probes)
                .map(|i| {
                    LinkFaults::new(
                        plan.link.params(),
                        DetRng::substream(seed, "fault.link", i as u64),
                    )
                })
                .collect()
        };
        self.stack.recovery.set_churn(
            plan.churn.clone(),
            plan.session.clone().unwrap_or_default(),
            seed,
        );
        self.stack.discovery.outages = plan
            .churn
            .as_ref()
            .map(|c| c.tracker_outages.clone())
            .unwrap_or_default();
    }

    /// Requests `n` shard workers for the event loop. The swarm is
    /// partitioned by home AS, workers advance in conservative lookahead
    /// windows derived from the minimum cross-shard link latency, and
    /// all outputs — traces, report, obs log, metrics — are
    /// byte-identical to a single-threaded run. `n = 1` (the default,
    /// and anything ≤ 1) keeps the serial loop. Runs with custom
    /// behaviours installed fall back to a single shard (their state
    /// cannot be replicated).
    pub fn set_shards(&mut self, n: usize) {
        self.shards = n.max(1);
    }

    /// The peer table (source, probes, externals).
    pub fn peers(&self) -> &[PeerInfo] {
        &self.core.peers
    }

    /// Appends a custom [`Behaviour`] to the stack. It runs after the
    /// built-in behaviours on every event, in push order — no dispatcher
    /// or state-core change needed.
    pub fn push_behaviour(&mut self, behaviour: Box<dyn Behaviour>) {
        self.stack.push(behaviour);
    }

    /// Runs the experiment and returns the captured traces plus the
    /// ground-truth report.
    pub fn run(self) -> (TraceSet, SwarmReport) {
        match self.run_into(MemorySink::new()) {
            Ok(out) => out,
            // MemorySink::sink_probe / finish are infallible.
            Err(_) => unreachable!("in-memory sink cannot fail"),
        }
    }

    /// Runs the experiment, draining each probe's finalized capture into
    /// `sink` as it is collected — the capture is never held as a whole
    /// unless the sink chooses to (e.g. [`MemorySink`]); a spill-to-disk
    /// sink bounds peak memory to one probe's trace.
    pub fn run_into<S: RecordSink>(
        mut self,
        mut sink: S,
    ) -> Result<(S::Output, SwarmReport), TraceError> {
        self.execute();
        for mut trace in std::mem::take(&mut self.core.traces) {
            trace.finalize();
            sink.sink_probe(trace)?;
        }
        let out = sink.finish(&self.core.cfg.profile.name, self.core.cfg.duration_us)?;
        Ok((out, self.core.report))
    }

    /// Runs the dispatcher's event loop and fills the ground-truth
    /// report. Captured records accumulate in `core.traces`, unsorted
    /// (transfers push future-timestamped receiver records).
    fn execute(&mut self) {
        let horizon = SimTime::from_us(self.core.cfg.duration_us);
        let pspan = self.core.obs.pspan("swarm.run");
        pspan.add_sim_us(self.core.cfg.duration_us);
        netaware_obs::event!(
            self.core.obs,
            Level::Info,
            "swarm.run",
            SimTime::ZERO,
            "app" = self.core.cfg.profile.name.as_str(),
            "probes" = self.core.n_probes,
            "peers" = self.core.peers.len(),
            "duration_us" = self.core.cfg.duration_us,
        );

        let Swarm { core, stack, shards } = self;
        dispatch::run(core, stack, horizon, *shards);

        let mut min_permille: i64 = 1000;
        for (i, s) in core.probe_states.iter().enumerate() {
            core.report.chunks_delivered += s.sched.delivered;
            core.report.chunks_lost += s.sched.lost;
            let total = s.sched.delivered + s.sched.lost;
            let continuity = if total == 0 {
                1.0
            } else {
                s.sched.delivered as f64 / total as f64
            };
            // Surface the per-probe continuity index (graceful-degradation
            // signal under faults) through the obs layer: stored as
            // permille so the integer metrics pipeline carries it intact.
            let permille = (continuity * 1000.0).round() as u64;
            min_permille = min_permille.min(permille as i64);
            core.m.continuity_permille.record(permille as usize);
            netaware_obs::event!(
                core.obs,
                Level::Info,
                "swarm.continuity",
                horizon,
                "probe" = i,
                "permille" = permille,
                "delivered" = s.sched.delivered,
                "lost" = s.sched.lost,
            );
            core.report.per_probe.push(report::ProbePerf {
                probe: core.meta[1 + i].ip,
                delivered: s.sched.delivered,
                lost: s.sched.lost,
                continuity,
            });
        }
        core.m.continuity_min_permille.set(min_permille);
        pspan.add_events(core.report.events_dispatched);
        netaware_obs::event!(
            core.obs,
            Level::Info,
            "swarm.done",
            horizon,
            "delivered" = core.report.chunks_delivered,
            "lost" = core.report.chunks_lost,
            "refused" = core.report.chunks_refused,
            "events" = core.report.events_dispatched,
        );
    }
}

#[cfg(test)]
mod tests;

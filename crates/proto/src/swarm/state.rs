//! Swarm state: peer tables, probe protocol state, discovery tables.
//!
//! [`ProbeState`] is sliced by concern: each behaviour module primarily
//! owns one slice ([`DiscoveryState`], [`SchedulingState`],
//! [`RecoveryState`], plus the transfer machinery's [`LinkState`]),
//! while the probe's private RNG stays shared — every concern draws
//! from the *same* per-probe decision stream, in dispatch order, which
//! is part of the byte-identity contract. Cross-slice touches exist
//! where the protocol genuinely couples concerns (scheduling writes
//! retry counters; recovery frees scheduling's pending slots) and are
//! documented at the call sites.

use super::{Swarm, SwarmConfig, SwarmCore, SwarmReport};
use crate::chunk::{BufferMap, ChunkId};
use crate::peer::{PeerId, PeerInfo, PeerRole};
use netaware_net::{
    hash, AccessLink, AsId, CountryCode, GeoRegistry, Ip, LatencyModel, PathModel,
};
use netaware_sim::{AccessSerializer, DetRng};
use netaware_trace::ProbeTrace;
use std::collections::BTreeMap;

/// The network substrate a swarm runs over.
#[derive(Clone, Copy)]
pub struct NetworkEnv<'a> {
    /// Prefix → AS → country registry.
    pub registry: &'a GeoRegistry,
    /// Directional hop-count model.
    pub paths: PathModel,
    /// One-way delay model.
    pub latency: LatencyModel,
}

/// One probe host as configured in the scenario (Table I rows).
#[derive(Clone, Debug)]
pub struct ProbeSpec {
    /// Address (resolves to site subnet / AS / CC).
    pub ip: Ip,
    /// Access link incl. NAT/firewall flags.
    pub access: AccessLink,
}

/// One external peer of the synthetic population.
#[derive(Clone, Debug)]
pub struct ExternalSpec {
    /// Address.
    pub ip: Ip,
    /// Access link.
    pub access: AccessLink,
}

/// The population handed to [`Swarm::new`].
#[derive(Clone, Debug)]
pub struct PeerSetup {
    /// The broadcast source (the CCTV-1 ingest server, in China).
    pub source: ExternalSpec,
    /// NAPA-WINE probes.
    pub probes: Vec<ProbeSpec>,
    /// External overlay population.
    pub externals: Vec<ExternalSpec>,
}

/// Pre-resolved geolocation and capacity of a peer (lookups are hot).
#[derive(Clone, Debug)]
pub struct PeerMeta {
    /// Overlay address.
    pub ip: Ip,
    /// Origin AS, when the address is announced.
    pub asn: Option<AsId>,
    /// Country of the origin AS.
    pub cc: Option<CountryCode>,
    /// Uplink capacity, bits per second.
    pub up_bps: u64,
    /// Downlink capacity, bits per second.
    pub down_bps: u64,
    /// Behind a NAT (inbound contacts fail).
    pub nat: bool,
    /// Behind a blocking firewall.
    pub fw: bool,
    /// Playout lag of an external peer, µs (how far behind the source its
    /// buffer runs); 0 for the source.
    pub lag_us: u64,
    /// UDP port this peer speaks from.
    pub port: u16,
}

/// A neighbor-table entry at a probe.
#[derive(Clone, Copy, Debug)]
pub struct Neighbor {
    /// The neighbor peer.
    pub id: PeerId,
    /// Entry eviction time, µs since experiment start.
    pub expires_us: u64,
}

/// An in-flight chunk request.
#[derive(Clone, Copy, Debug)]
pub struct Pending {
    /// The chunk requested.
    pub chunk: ChunkId,
    /// Who was asked.
    pub provider: PeerId,
    /// Retry/abandon deadline, µs since experiment start.
    pub deadline_us: u64,
}

/// Modem burst-coalescing state (ADSL interleaving): packets that drain
/// from the bottleneck within the same interleave window are handed to
/// the host NIC back-to-back, which is why packet-pair capacity probes
/// behind 2008-era DSL lines still saw sub-millisecond gaps.
#[derive(Clone, Copy, Debug, Default)]
pub struct ModemState {
    /// Interleave window the last packet drained into.
    pub bucket: u64,
    /// Packets coalesced into the current window.
    pub count: u32,
}

/// Access-link state of one probe, owned by the transfer machinery.
#[derive(Clone)]
pub struct LinkState {
    /// Upload access-link queue.
    pub uplink: AccessSerializer,
    /// Download access-link queue.
    pub downlink: AccessSerializer,
    /// Present on probes behind interleaving modems (down < 15 Mb/s).
    pub modem: Option<ModemState>,
    /// Last downlink delivery per providing flow (per-flow pacing).
    pub last_rx_from: BTreeMap<PeerId, netaware_sim::SimTime>,
    /// Upload serializers of the external peers *this probe* talks to,
    /// created lazily on first serve. Keeping them per-probe (instead of
    /// globally shared) makes every external-interaction path a pure
    /// function of one probe's state, which is what lets the sharded
    /// engine replicate externals without cross-shard coordination.
    pub ext_up: BTreeMap<PeerId, AccessSerializer>,
}

/// The discovery behaviour's slice of one probe's state.
#[derive(Clone)]
pub struct DiscoveryState {
    /// Current neighbor table.
    pub neighbors: Vec<Neighbor>,
    /// Per-probe halo contact rate, Hz.
    pub halo_rate_hz: f64,
}

/// The scheduling behaviour's slice of one probe's state.
#[derive(Clone)]
pub struct SchedulingState {
    /// Chunks held in the playout buffer.
    pub bufmap: BufferMap,
    /// How far behind the stream head this probe fetches, in chunks.
    /// Peers joining a live channel sit at different playout positions;
    /// the spread is what lets earlier peers serve later ones.
    pub fetch_lag_chunks: u32,
    /// Upstream estimate per remote, learned from chunk deliveries.
    pub est_bps: BTreeMap<PeerId, u64>,
    /// Most recent successful provider (download stickiness).
    pub last_provider: Option<PeerId>,
    /// In-flight chunk requests.
    pub pending: Vec<Pending>,
    /// Requesters recently served (upload stickiness pool).
    pub active_requesters: Vec<PeerId>,
    /// Aggregate external demand rate on this probe, Hz.
    pub demand_rate_hz: f64,
    /// Chunks lost to playout deadline.
    pub lost: u64,
    /// Chunks successfully received.
    pub delivered: u64,
}

/// The churn-recovery behaviour's slice of one probe's state.
#[derive(Clone)]
pub struct RecoveryState {
    /// Chunks to re-request promptly: their provider departed while the
    /// request was in flight (churn recovery path).
    pub requeue: Vec<ChunkId>,
    /// Request attempts per missing chunk, for exponential timeout
    /// backoff; pruned as the playout base advances.
    pub attempts: BTreeMap<ChunkId, u32>,
}

/// Full protocol state of one probe, sliced by owning concern.
#[derive(Clone)]
pub struct ProbeState {
    /// Access-link state (transfer machinery).
    pub link: LinkState,
    /// Discovery behaviour's slice.
    pub disc: DiscoveryState,
    /// Scheduling behaviour's slice.
    pub sched: SchedulingState,
    /// Churn-recovery behaviour's slice.
    pub rec: RecoveryState,
    /// This probe's private decision stream, shared by all concerns in
    /// dispatch order (draw order is part of the determinism contract).
    pub rng: DetRng,
}

/// Discovery sampling structures shared by all probes.
#[derive(Clone, Default)]
pub struct DiscoveryTables {
    /// External indices (into `peers`) with cumulative bandwidth-biased
    /// weights, for O(log n) weighted sampling.
    pub ext_ids: Vec<PeerId>,
    /// Running sum of sampling weights, aligned with `ext_ids`.
    pub cum_weights: Vec<f64>,
    /// Externals grouped by AS (for AS-biased discovery shortlists).
    pub by_as: BTreeMap<AsId, Vec<PeerId>>,
}

impl DiscoveryTables {
    /// Samples an external by the bandwidth-biased weight.
    pub fn sample_bw(&self, rng: &mut DetRng) -> Option<PeerId> {
        let total = *self.cum_weights.last()?;
        if total <= 0.0 {
            return None;
        }
        let x = rng.unit() * total;
        let idx = self.cum_weights.partition_point(|&w| w < x);
        Some(self.ext_ids[idx.min(self.ext_ids.len() - 1)])
    }

    /// Samples an external uniformly.
    pub fn sample_uniform(&self, rng: &mut DetRng) -> Option<PeerId> {
        if self.ext_ids.is_empty() {
            return None;
        }
        let i = rng.range(0..self.ext_ids.len());
        Some(self.ext_ids[i])
    }

    /// Samples an external in the given AS, if any live there.
    pub fn sample_in_as(&self, asn: AsId, rng: &mut DetRng) -> Option<PeerId> {
        let list = self.by_as.get(&asn)?;
        if list.is_empty() {
            return None;
        }
        Some(list[rng.range(0..list.len())])
    }
}

/// The packet train of one probe→probe chunk transfer, built on the
/// provider's shard and consumed on the receiver's. Carrying departure
/// times instead of mutating receiver state at serve time is what keeps
/// the transfer's two halves on their own shards: the provider computes
/// when each packet clears its uplink and the path, the receiver applies
/// its own loss process and downlink queueing when the train reaches it.
#[derive(Clone, Debug)]
pub struct ChunkTrain {
    /// No packet was dropped on the provider's side of the path; only a
    /// complete train can yield a `Delivered`.
    pub complete: bool,
    /// `(reach_us, wire_bytes)` per surviving packet: when the packet
    /// reaches the receiver's access link, and its on-wire size.
    pub pkts: Vec<(u64, u16)>,
}

/// Simulation events.
#[derive(Clone, Debug)]
pub enum Event {
    /// Protocol tick at probe `i`.
    Tick(u32),
    /// Aggregate external demand arrival at probe `i`.
    Demand(u32),
    /// Signalling-only discovery contact by probe `i`.
    Halo(u32),
    /// A chunk request arrives at its provider.
    Serve {
        /// Who must upload.
        provider: PeerId,
        /// Who asked.
        to: PeerId,
        /// Which chunk.
        chunk: ChunkId,
        /// The probe provider already charged its inbound-request fate
        /// and capture and re-scheduled the serve past the request's
        /// downlink queueing delay; skip the receive preamble.
        deferred: bool,
    },
    /// A probe→probe chunk packet train reaches the receiver's access
    /// link (receiver-side half of the transfer).
    ChunkRx {
        /// Receiving probe.
        to: PeerId,
        /// Providing probe.
        from: PeerId,
        /// Which chunk.
        chunk: ChunkId,
        /// The packets, with provider-side fates already applied.
        train: Box<ChunkTrain>,
    },
    /// A signalling packet from another probe reaches the receiver's
    /// access link (receiver-side half of probe→probe signalling).
    SignalRx {
        /// Receiving probe.
        to: PeerId,
        /// Sending probe.
        from: PeerId,
        /// On-wire size, bytes.
        size: u16,
    },
    /// A chunk finished arriving at a probe.
    Delivered {
        /// Receiving probe.
        to: PeerId,
        /// Providing peer.
        from: PeerId,
        /// Which chunk.
        chunk: ChunkId,
        /// Observed delivery throughput (the requester's new estimate of
        /// the provider's upstream).
        est_bps: u64,
    },
    /// An external peer's session ends (churn): it crashes away,
    /// stranding whatever was pending on it.
    Depart(PeerId),
    /// A departed external rejoins the overlay (churn).
    Arrive(PeerId),
}

/// Deterministic playout lag of an external: 0.5–5 s behind the source.
/// Must sit well inside the probes' buffer window (≈7 s), otherwise
/// externals could never hold the chunks probes are still missing.
pub fn ext_lag_us(ip: Ip) -> u64 {
    500_000 + (hash::unit(ip.0 as u64 ^ 0x1A6) * 4_500_000.0) as u64
}

/// Deterministic application port of a peer.
pub fn app_port(ip: Ip) -> u16 {
    30_000 + (hash::mix64(ip.0 as u64) % 30_000) as u16
}

fn meta_of(reg: &GeoRegistry, ip: Ip, access: AccessLink, lag_us: u64) -> PeerMeta {
    PeerMeta {
        ip,
        asn: reg.as_of(ip),
        cc: reg.country_of(ip),
        up_bps: access.class.up_bps(),
        down_bps: access.class.down_bps(),
        nat: access.nat,
        fw: access.firewall,
        lag_us,
        port: app_port(ip),
    }
}

/// Builds the fully wired swarm (called by [`Swarm::new`]).
pub fn build<'a>(cfg: SwarmConfig, env: NetworkEnv<'a>, setup: PeerSetup) -> Swarm<'a> {
    let n_probes = setup.probes.len();
    let mut peers = Vec::with_capacity(1 + n_probes + setup.externals.len());
    let mut meta = Vec::with_capacity(peers.capacity());

    // Index 0: the source.
    peers.push(PeerInfo {
        id: PeerId(0),
        ip: setup.source.ip,
        access: setup.source.access,
        role: PeerRole::Source,
    });
    meta.push(meta_of(env.registry, setup.source.ip, setup.source.access, 0));

    for (i, p) in setup.probes.iter().enumerate() {
        peers.push(PeerInfo {
            id: PeerId((1 + i) as u32),
            ip: p.ip,
            access: p.access,
            role: PeerRole::Probe,
        });
        meta.push(meta_of(env.registry, p.ip, p.access, 0));
    }
    for (i, e) in setup.externals.iter().enumerate() {
        let id = PeerId((1 + n_probes + i) as u32);
        peers.push(PeerInfo {
            id,
            ip: e.ip,
            access: e.access,
            role: PeerRole::External,
        });
        meta.push(meta_of(env.registry, e.ip, e.access, ext_lag_us(e.ip)));
    }

    // Discovery tables over externals only.
    let mut ext_ids = Vec::with_capacity(setup.externals.len());
    let mut cum_weights = Vec::with_capacity(setup.externals.len());
    let mut by_as: BTreeMap<AsId, Vec<PeerId>> = BTreeMap::new();
    let mut acc = 0.0f64;
    let bw_exp = cfg.profile.discovery_bw_exponent;
    for i in 0..setup.externals.len() {
        let id = PeerId((1 + n_probes + i) as u32);
        let m = &meta[id.0 as usize];
        let w = (m.up_bps as f64 / 1e6).max(0.05).powf(bw_exp);
        acc += w;
        ext_ids.push(id);
        cum_weights.push(acc);
        if let Some(asn) = m.asn {
            by_as.entry(asn).or_default().push(id);
        }
    }

    let rng = DetRng::stream(cfg.seed, "swarm");

    // Per-probe upload popularity: Pareto spread normalised to mean ~1.
    let mut popularity: Vec<f64> = (0..n_probes)
        .map(|i| {
            let mut r = DetRng::substream(cfg.seed, "popularity", i as u64);
            if cfg.profile.popularity_spread <= 0.0 {
                1.0
            } else {
                r.pareto(0.5, 1.0 / cfg.profile.popularity_spread.max(0.05), 12.0)
            }
        })
        .collect();
    let mean_pop: f64 = popularity.iter().sum::<f64>() / n_probes.max(1) as f64;
    if mean_pop > 0.0 {
        popularity.iter_mut().for_each(|p| *p /= mean_pop);
    }

    let stream = cfg.stream;
    let chunk_bits = stream.chunk_bytes as f64 * 8.0;

    let mut probe_states = Vec::with_capacity(n_probes);
    let mut traces = Vec::with_capacity(n_probes);
    #[allow(clippy::needless_range_loop)] // i is also the probe index baked into ids/seeds
    for i in 0..n_probes {
        let id = PeerId((1 + i) as u32);
        let m = meta[id.0 as usize].clone();
        // Neighbor table: the source, every probe-pair edge that the
        // mesh probability grants, plus tracker-provided externals.
        let mut neighbors = vec![Neighbor {
            id: PeerId(0),
            expires_us: u64::MAX,
        }];
        for j in 0..n_probes {
            if i == j {
                continue;
            }
            // Symmetric coin per unordered pair.
            let (lo, hi) = if i < j { (i, j) } else { (j, i) };
            let coin = hash::unit(hash::mix2(cfg.seed ^ lo as u64, hi as u64));
            if coin < cfg.profile.probe_mesh_prob {
                neighbors.push(Neighbor {
                    id: PeerId((1 + j) as u32),
                    expires_us: u64::MAX,
                });
            }
        }

        let prng = DetRng::substream(cfg.seed, "probe", i as u64);

        // External demand rate on this probe: capped by its uplink.
        let target_bps = cfg.profile.upload_target_factor * stream.rate_bps as f64
            * popularity[i];
        let cap_bps = 0.7 * m.up_bps as f64;
        let mut demand_hz = target_bps.min(cap_bps) / chunk_bits;
        if m.fw {
            demand_hz *= 0.25;
        } else if m.nat {
            demand_hz *= 0.5;
        }

        let halo_jitter = 0.6 + 0.8 * hash::unit(cfg.seed ^ (i as u64) << 7 ^ 0x4A10);
        let stagger = ((i as u32) * 5) % 12;
        probe_states.push(ProbeState {
            link: LinkState {
                uplink: AccessSerializer::new(m.up_bps.max(1)),
                downlink: AccessSerializer::new(m.down_bps.max(1)),
                modem: (m.down_bps < 15_000_000).then(ModemState::default),
                last_rx_from: BTreeMap::new(),
                ext_up: BTreeMap::new(),
            },
            disc: DiscoveryState {
                neighbors,
                halo_rate_hz: cfg.profile.halo_contacts_per_sec * halo_jitter,
            },
            sched: SchedulingState {
                bufmap: BufferMap::new(),
                fetch_lag_chunks: stagger,
                est_bps: BTreeMap::new(),
                last_provider: None,
                pending: Vec::new(),
                active_requesters: Vec::new(),
                demand_rate_hz: demand_hz,
                lost: 0,
                delivered: 0,
            },
            rec: RecoveryState {
                requeue: Vec::new(),
                attempts: BTreeMap::new(),
            },
            rng: prng,
        });
        traces.push(ProbeTrace::new(m.ip));
    }

    // The profile *is* the behaviour composition: build the stack from
    // it, then install the discovery tables the sampler needs.
    let mut stack = cfg.profile.stack();
    stack.discovery.tables = DiscoveryTables {
        ext_ids,
        cum_weights,
        by_as,
    };

    let mut core = SwarmCore {
        cfg,
        env,
        peers: std::sync::Arc::new(peers),
        meta: std::sync::Arc::new(meta),
        n_probes,
        probe_states,
        traces,
        rng,
        report: SwarmReport::default(),
        obs: netaware_obs::Obs::default(),
        m: super::SwarmMetrics::default(),
        links: Vec::new(),
        offline: std::collections::BTreeSet::new(),
        shard: super::ShardRole::default(),
    };

    // Tracker bootstrap: hand each probe its initial external neighbors
    // through the discovery behaviour (no scheduler exists yet — the
    // handshake emits no events, so the scratch queue stays empty).
    let mut actions = super::behaviour::Actions::default();
    for i in 0..n_probes {
        let want = stack.discovery.init_neighbors;
        for _ in 0..want {
            let mut ctx = super::behaviour::Ctx {
                core: &mut core,
                actions: &mut actions,
                now: netaware_sim::SimTime::ZERO,
            };
            stack.discovery.try_discover(&mut ctx, i, 0);
        }
    }
    debug_assert!(actions.queue.is_empty());

    Swarm {
        core,
        stack,
        shards: 1,
    }
}

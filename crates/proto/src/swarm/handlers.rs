//! Event handlers: the protocol logic.

use super::state::{Event, Neighbor, Pending};
use super::Swarm;
use crate::chunk::ChunkId;
use crate::message::Signal;
use crate::peer::{PeerId, PeerRole};
use crate::policy::Candidate;
use netaware_obs::Level;
use netaware_sim::{PacketFate, Scheduler, SimTime};
use netaware_trace::PayloadKind;

/// Real clients rarely pull from the source itself once the swarm is
/// warm; this factor keeps the source as a fallback, not a favourite.
const SOURCE_WEIGHT_FACTOR: f64 = 0.05;
/// Estimate recorded for a provider that timed out (punitive, keeps it
/// classified as "tried" while making re-selection unlikely).
const TIMEOUT_EST_BPS: u64 = 200_000;
/// Upload stickiness pool size.
const ACTIVE_REQUESTER_CAP: usize = 48;

impl Swarm<'_> {
    pub(crate) fn handle(&mut self, sched: &mut Scheduler<Event>, now: SimTime, ev: Event) {
        match ev {
            Event::Tick(i) => self.on_tick(sched, now, i as usize),
            Event::Demand(i) => self.on_demand(sched, now, i as usize),
            Event::Halo(i) => self.on_halo(sched, now, i as usize),
            Event::Serve { provider, to, chunk } => self.on_serve(sched, now, provider, to, chunk),
            Event::Delivered {
                to,
                from,
                chunk,
                est_bps,
            } => self.on_delivered(now, to, from, chunk, est_bps),
            Event::Depart(id) => self.on_depart(sched, now, id),
            Event::Arrive(id) => self.on_arrive(sched, now, id),
        }
    }

    fn on_tick(&mut self, sched: &mut Scheduler<Event>, now: SimTime, i: usize) {
        let pid = PeerId((1 + i) as u32);
        let profile = self.cfg.profile.clone();
        let now_us = now.as_us();

        // 1. Neighbor churn: drop expired externals, top up via discovery.
        self.probe_states[i]
            .neighbors
            .retain(|n| n.expires_us > now_us);
        let want = {
            let f = profile.discovery_per_tick;
            let whole = f.floor() as usize;
            let frac = f - whole as f64;
            whole + usize::from(self.probe_states[i].rng.chance(frac))
        };
        for _ in 0..want {
            try_discover_neighbor(self, i, now_us);
        }

        // 2. Buffer-map signalling.
        self.exchange_announces(now, i, pid, &profile);

        // 3. Playout bookkeeping and chunk requests.
        let Some(head) = self.cfg.stream.head_at(now_us) else {
            sched.push(now + profile.tick_us, Event::Tick(i as u32));
            return;
        };
        // This probe's fetch frontier sits `2 + fetch_lag` chunks behind
        // the source head (brand-new chunks exist only at the source;
        // staggered lags put probes at different playout positions), and
        // its buffer window extends `buffer_delay` chunks further back.
        let fetch_lag = self.probe_states[i].fetch_lag_chunks;
        let frontier = ChunkId(head.0.saturating_sub(2 + fetch_lag));
        let playhead = ChunkId(frontier.0.saturating_sub(profile.buffer_delay_chunks));

        {
            let s = &mut self.probe_states[i];
            // Chunks that fell behind the playout deadline are lost.
            if playhead.0 > s.bufmap.base().0 {
                let lost = s
                    .bufmap
                    .missing_in(s.bufmap.base(), ChunkId(playhead.0 - 1))
                    .count() as u64;
                s.lost += lost;
                s.bufmap.advance_base(playhead);
                // Chunks behind the playhead can never be requested
                // again: drop their retry-backoff bookkeeping.
                s.attempts = s.attempts.split_off(&playhead);
                if lost > 0 {
                    self.m.chunks_expired.add(lost);
                    netaware_obs::event!(
                        self.obs,
                        Level::Debug,
                        "swarm.chunk_expired",
                        now,
                        "probe" = i,
                        "lost" = lost,
                    );
                }
            }
            let s = &mut self.probe_states[i];
            // Expire timed-out requests, punishing the slow provider.
            let mut timed_out = Vec::new();
            s.pending.retain(|p| {
                if p.deadline_us <= now_us {
                    timed_out.push(p.provider);
                    false
                } else {
                    true
                }
            });
            self.m.requests_timed_out.add(timed_out.len() as u64);
            let s = &mut self.probe_states[i];
            for prov in timed_out {
                let e = s.est_bps.entry(prov).or_insert(TIMEOUT_EST_BPS);
                *e = (*e).min(TIMEOUT_EST_BPS);
            }
        }

        // Issue requests for missing chunks, oldest-deadline-first.
        // Re-queued chunks (provider departed mid-request) go first:
        // they were already scheduled once, so their playout deadline is
        // nearest.
        let target = ChunkId(frontier.0.max(playhead.0));
        let budget = profile
            .max_parallel_requests
            .saturating_sub(self.probe_states[i].pending.len());
        if budget > 0 {
            let missing: Vec<ChunkId> = {
                let s = &mut self.probe_states[i];
                let mut list: Vec<ChunkId> = Vec::new();
                for c in std::mem::take(&mut s.requeue) {
                    if c.0 >= playhead.0
                        && !s.bufmap.contains(c)
                        && !s.pending.iter().any(|p| p.chunk == c)
                        && !list.contains(&c)
                    {
                        list.push(c);
                    }
                }
                let scan: Vec<ChunkId> = s
                    .bufmap
                    .missing_in(playhead, target)
                    .filter(|c| !s.pending.iter().any(|p| p.chunk == *c) && !list.contains(c))
                    .collect();
                list.extend(scan);
                list.truncate(budget);
                list
            };
            for chunk in missing {
                self.request_chunk(sched, now, i, pid, chunk, &profile);
            }
        }

        sched.push(now + profile.tick_us, Event::Tick(i as u32));
    }

    /// Buffer-map announcements: TX to random neighbors, RX from random
    /// *external* neighbors (probe neighbors announce on their own tick).
    fn exchange_announces(
        &mut self,
        now: SimTime,
        i: usize,
        pid: PeerId,
        profile: &crate::profiles::AppProfile,
    ) {
        let (tx_n, rx_n) = profile.announces_per_tick;
        let n_neigh = self.probe_states[i].neighbors.len();
        if n_neigh == 0 {
            return;
        }
        // Gossip fan-out: how many neighbors this tick's announcements
        // could reach, and how many buffer maps actually go out.
        self.m.gossip_fanout.record(n_neigh);
        self.m.gossip_announcements.add(tx_n as u64);
        let tick = profile.tick_us;
        for k in 0..tx_n {
            let pick = self.probe_states[i].rng.range(0..n_neigh);
            let to = self.probe_states[i].neighbors[pick].id;
            let at = now + (k as u64 * tick) / (tx_n.max(1) as u64 * 2);
            self.send_signal(at, pid, to, Signal::BufferMap);
        }
        // RX: sample external neighbors only.
        let ext_neighbors: Vec<PeerId> = self.probe_states[i]
            .neighbors
            .iter()
            .map(|n| n.id)
            .filter(|id| self.peers[id.0 as usize].role == PeerRole::External)
            .collect();
        if ext_neighbors.is_empty() {
            return;
        }
        for k in 0..rx_n {
            let pick = self.probe_states[i].rng.range(0..ext_neighbors.len());
            let from = ext_neighbors[pick];
            let at = now + (k as u64 * tick) / (rx_n.max(1) as u64);
            // Incoming announces cross this probe's access link; a
            // faulty link silently eats some of them.
            let at = match self.link_fate(i, at.as_us()) {
                PacketFate::Dropped => continue,
                PacketFate::Pass { extra_delay_us } => at + extra_delay_us,
            };
            let ttl = self.ttl_to(from, pid);
            self.capture(
                i,
                at,
                from,
                pid,
                Signal::BufferMap.wire_size(),
                ttl,
                PayloadKind::Signaling,
            );
            self.report.signal_packets += 1;
        }
    }

    /// Selects a provider for `chunk` and fires the request.
    fn request_chunk(
        &mut self,
        sched: &mut Scheduler<Event>,
        now: SimTime,
        i: usize,
        pid: PeerId,
        chunk: ChunkId,
        profile: &crate::profiles::AppProfile,
    ) {
        let now_us = now.as_us();
        let my = self.meta[pid.0 as usize].clone();

        // Gather candidates that plausibly hold the chunk.
        let mut cand_ids: Vec<PeerId> = Vec::new();
        let mut weights: Vec<f64> = Vec::new();
        let mut untried: Vec<PeerId> = Vec::new();
        {
            let s = &self.probe_states[i];
            let chunk_ready_us = self.cfg.stream.chunk_time_us(chunk);
            for n in &s.neighbors {
                let id = n.id;
                // Departed externals are scrubbed from neighbor tables
                // eagerly, but a same-tick departure can race the scan.
                if self.is_offline(id) {
                    continue;
                }
                let available = match self.peers[id.0 as usize].role {
                    PeerRole::Source => true,
                    PeerRole::Probe => {
                        let qi = id.0 as usize - 1;
                        self.probe_states[qi].bufmap.contains(chunk)
                    }
                    PeerRole::External => {
                        let m = &self.meta[id.0 as usize];
                        chunk_ready_us + m.lag_us <= now_us
                    }
                };
                if !available {
                    continue;
                }
                let m = &self.meta[id.0 as usize];
                let cand = Candidate {
                    est_up_bps: s.est_bps.get(&id).copied(),
                    same_subnet: m.ip.same_subnet(my.ip),
                    same_as: m.asn.is_some() && m.asn == my.asn,
                    same_cc: m.cc.is_some() && m.cc == my.cc,
                    is_last_provider: s.last_provider == Some(id),
                };
                let mut w = profile.download_policy.weight(&cand);
                if self.peers[id.0 as usize].role == PeerRole::Source {
                    w *= SOURCE_WEIGHT_FACTOR;
                }
                cand_ids.push(id);
                weights.push(w);
                if cand.est_up_bps.is_none()
                    && self.peers[id.0 as usize].role == PeerRole::External
                {
                    untried.push(id);
                }
            }
        }
        if cand_ids.is_empty() {
            // Nobody reachable has it. The chunk stays missing, so the
            // next tick's scan retries it — and if it got here via the
            // requeue path (sole provider departed), `on_depart` already
            // pulled it out of `pending`, so the scan *will* see it
            // rather than treating it as still in flight.
            return;
        }

        let s = &mut self.probe_states[i];
        let provider = if !untried.is_empty() && s.rng.chance(profile.exploration) {
            untried[s.rng.range(0..untried.len())]
        } else {
            match s.rng.pick_weighted(&weights) {
                Some(k) => cand_ids[k],
                None => cand_ids[s.rng.range(0..cand_ids.len())],
            }
        };

        // Retransmit timer with exponential backoff: each repeat attempt
        // for the same chunk doubles the timeout (capped at 8×), so a
        // lossy path is given progressively longer to complete a train
        // instead of being hammered at the base RTO.
        let attempt = {
            let a = s.attempts.entry(chunk).or_insert(0);
            let prev = *a;
            *a = a.saturating_add(1);
            prev
        };
        let timeout_us = profile.request_timeout_us << attempt.min(3);
        s.pending.push(Pending {
            chunk,
            provider,
            deadline_us: now_us + timeout_us,
        });
        self.m.chunks_requested.inc();
        netaware_obs::event!(
            self.obs,
            Level::Debug,
            "swarm.chunk_sched",
            now,
            "probe" = i,
            "chunk" = chunk.0,
            "provider" = provider.0,
            "candidates" = cand_ids.len(),
        );
        // A lost request packet simply never reaches the provider: the
        // pending entry rides out its timeout and the chunk is retried.
        if let Some(arrival) = self.send_signal(now, pid, provider, Signal::ChunkRequest(chunk)) {
            sched.push(
                arrival,
                Event::Serve {
                    provider,
                    to: pid,
                    chunk,
                },
            );
        }
    }

    fn on_serve(
        &mut self,
        sched: &mut Scheduler<Event>,
        now: SimTime,
        provider: PeerId,
        to: PeerId,
        chunk: ChunkId,
    ) {
        // Mid-transfer crash: the provider departed after the request
        // was sent but before it arrived. Nothing is served; the
        // requester recovers via the re-queue (if the departure was
        // seen) or its request timeout.
        if self.is_offline(provider) {
            self.report.chunks_refused += 1;
            self.m.chunks_refused.inc();
            return;
        }
        match self.peers[provider.0 as usize].role {
            PeerRole::Probe => {
                let pi = provider.0 as usize - 1;
                let has = self.probe_states[pi].bufmap.contains(chunk);
                let backlog_ok = self.probe_states[pi].uplink.backlog_us(now)
                    <= self.cfg.profile.upload_backlog_cap_us;
                if has && backlog_ok {
                    self.probe_serve_chunk(sched, now, provider, to, chunk);
                } else {
                    self.report.chunks_refused += 1;
                    self.m.chunks_refused.inc();
                    netaware_obs::event!(
                        self.obs,
                        Level::Debug,
                        "swarm.serve_refused",
                        now,
                        "provider" = provider.0,
                        "chunk" = chunk.0,
                        "has" = has,
                    );
                }
            }
            PeerRole::Source | PeerRole::External => {
                // The source always has the chunk; externals were
                // availability-checked at request time (their lag only
                // shrinks relative to a fixed chunk).
                self.external_serve_chunk(sched, now, provider, to, chunk);
            }
        }
    }

    fn on_delivered(&mut self, _now: SimTime, to: PeerId, from: PeerId, chunk: ChunkId, est: u64) {
        let Some(ti) = self.probe_index(to) else {
            return;
        };
        let s = &mut self.probe_states[ti];
        s.pending.retain(|p| p.chunk != chunk);
        s.attempts.remove(&chunk);
        s.requeue.retain(|c| *c != chunk);
        if !s.bufmap.contains(chunk) && chunk.0 >= s.bufmap.base().0 {
            s.bufmap.insert(chunk);
            s.delivered += 1;
        } else {
            // Duplicate or stale delivery (already held, or behind the
            // playout base): the bytes were wasted.
            self.m.chunks_duplicate.inc();
        }
        s.est_bps.insert(from, est);
        s.last_provider = Some(from);
    }

    /// Aggregate external demand on probe `i`: one chunk request arrives.
    fn on_demand(&mut self, sched: &mut Scheduler<Event>, now: SimTime, i: usize) {
        let profile = self.cfg.profile.clone();
        let pid = PeerId((1 + i) as u32);

        // Schedule the next arrival first (Poisson process).
        let rate = self.probe_states[i].demand_rate_hz;
        if rate > 0.0 {
            let dt = self.probe_states[i].rng.exp(1.0 / rate);
            let dt_us = (dt * 1e6).clamp(1_000.0, 120_000_000.0) as u64;
            sched.push(now + dt_us, Event::Demand(i as u32));
        }

        // Pick the requester.
        let my = self.meta[pid.0 as usize].clone();
        let requester = {
            let sticky = {
                let s = &mut self.probe_states[i];
                !s.active_requesters.is_empty() && s.rng.chance(profile.demand_stickiness)
            };
            if sticky {
                let s = &mut self.probe_states[i];
                let k = s.rng.range(0..s.active_requesters.len());
                Some(s.active_requesters[k])
            } else {
                // Weighted draft among external neighbors by the upload
                // policy's locality terms.
                let cands: Vec<PeerId> = self.probe_states[i]
                    .neighbors
                    .iter()
                    .map(|n| n.id)
                    .filter(|id| self.peers[id.0 as usize].role == PeerRole::External)
                    .collect();
                if cands.is_empty() {
                    None
                } else {
                    let weights: Vec<f64> = cands
                        .iter()
                        .map(|id| {
                            let m = &self.meta[id.0 as usize];
                            profile.upload_policy.weight(&Candidate {
                                est_up_bps: None,
                                same_subnet: m.ip.same_subnet(my.ip),
                                same_as: m.asn.is_some() && m.asn == my.asn,
                                same_cc: m.cc.is_some() && m.cc == my.cc,
                                is_last_provider: false,
                            })
                        })
                        .collect();
                    let s = &mut self.probe_states[i];
                    let pick = s
                        .rng
                        .pick_weighted(&weights)
                        .unwrap_or_else(|| s.rng.range(0..cands.len()));
                    let r = cands[pick];
                    if !s.active_requesters.contains(&r) {
                        if s.active_requesters.len() >= ACTIVE_REQUESTER_CAP {
                            let evict = s.rng.range(0..s.active_requesters.len());
                            s.active_requesters.swap_remove(evict);
                        }
                        s.active_requesters.push(r);
                    }
                    Some(r)
                }
            }
        };
        let Some(requester) = requester else { return };

        // The request packet arrives at the probe now — unless the
        // probe's access link eats it (the external retries on its own
        // schedule, which the Poisson demand process already models).
        let now = match self.link_fate(i, now.as_us()) {
            PacketFate::Dropped => return,
            PacketFate::Pass { extra_delay_us } => now + extra_delay_us,
        };
        let ttl = self.ttl_to(requester, pid);
        self.capture(
            i,
            now,
            requester,
            pid,
            Signal::ChunkRequest(ChunkId(0)).wire_size(),
            ttl,
            PayloadKind::Signaling,
        );
        self.report.signal_packets += 1;

        self.probe_serve_external(now, pid, requester);
    }

    /// Signalling-only discovery contact (the PPLive "halo").
    fn on_halo(&mut self, sched: &mut Scheduler<Event>, now: SimTime, i: usize) {
        let pid = PeerId((1 + i) as u32);
        let rate = self.probe_states[i].halo_rate_hz;
        if rate > 0.0 {
            let dt = self.probe_states[i].rng.exp(1.0 / rate);
            let dt_us = (dt * 1e6).clamp(1_000.0, 600_000_000.0) as u64;
            sched.push(now + dt_us, Event::Halo(i as u32));
        }

        let Some(target) = self.discovery.sample_uniform(&mut self.probe_states[i].rng) else {
            return;
        };
        let entries = self.cfg.profile.peerlist_entries;
        let Some(arrival) = self.send_signal(now, pid, target, Signal::Hello) else {
            return; // hello lost on the wire
        };
        // Departed peers are silent; NATted externals answer only if
        // the hole punch works.
        let replies = {
            let m = &self.meta[target.0 as usize];
            let nat = m.nat;
            let online = !self.is_offline(target);
            let s = &mut self.probe_states[i];
            online && (!nat || s.rng.chance(0.6))
        };
        if replies {
            let lat = self.delay_us(target, pid);
            let back = arrival + lat;
            // The reply crosses this probe's access link on the way in.
            let back = match self.link_fate(i, back.as_us()) {
                PacketFate::Dropped => return,
                PacketFate::Pass { extra_delay_us } => back + extra_delay_us,
            };
            let ttl = self.ttl_to(target, pid);
            self.capture(
                i,
                back,
                target,
                pid,
                Signal::PeerListReply(entries).wire_size(),
                ttl,
                PayloadKind::Signaling,
            );
            self.report.signal_packets += 1;
        }
    }
}

/// Attempts to acquire one new external neighbor for probe `i`.
/// Returns `true` on success.
pub(crate) fn try_discover_neighbor(swarm: &mut Swarm<'_>, i: usize, now_us: u64) -> bool {
    let profile = swarm.cfg.profile.clone();
    if swarm.probe_states[i].neighbors.len() >= profile.max_neighbors {
        return false;
    }
    // Scheduled tracker outage: the rendezvous point is unreachable, so
    // no new peers can be learned until the window closes.
    if swarm.tracker_down(now_us) {
        return false;
    }
    let pid = PeerId((1 + i) as u32);
    let my_asn = swarm.meta[pid.0 as usize].asn;

    // AS-biased discovery: with probability derived from the boost and
    // the same-AS population share, draw from the same-AS shortlist.
    let candidate = {
        let total = swarm.discovery.ext_ids.len().max(1);
        let same_as_n = my_asn
            .and_then(|a| swarm.discovery.by_as.get(&a))
            .map_or(0, |v| v.len());
        let f = same_as_n as f64 / total as f64;
        let b = profile.discovery_as_boost;
        let q = if same_as_n == 0 {
            0.0
        } else {
            (b * f) / (b * f + (1.0 - f)).max(1e-12)
        };
        let s = &mut swarm.probe_states[i];
        if q > 0.0 && s.rng.chance(q) {
            my_asn.and_then(|a| swarm.discovery.sample_in_as(a, &mut s.rng))
        } else if profile.discovery_bw_exponent > 0.0 {
            swarm.discovery.sample_bw(&mut s.rng)
        } else {
            swarm.discovery.sample_uniform(&mut s.rng)
        }
    };
    let Some(cand) = candidate else { return false };

    // Departed peers are not discoverable until they rejoin.
    if swarm.is_offline(cand) {
        return false;
    }
    // Already a neighbor?
    if swarm.probe_states[i].neighbors.iter().any(|n| n.id == cand) {
        return false;
    }
    // NAT traversal.
    {
        let nat = swarm.meta[cand.0 as usize].nat;
        let s = &mut swarm.probe_states[i];
        if nat && !s.rng.chance(0.7) {
            swarm.m.handshakes_refused.inc();
            netaware_obs::event!(
                swarm.obs,
                Level::Debug,
                "swarm.handshake",
                SimTime::from_us(now_us),
                "probe" = i,
                "peer" = cand.0,
                "ok" = false,
                "nat" = true,
            );
            return false;
        }
    }

    let lifetime = {
        let s = &mut swarm.probe_states[i];
        let mean = profile.neighbor_lifetime_us as f64;
        (s.rng.exp(mean)).clamp(5e6, 20.0 * mean) as u64
    };

    // Handshake on the wire: either direction lost to a link fault means
    // no handshake and no neighbor entry.
    let now = SimTime::from_us(now_us);
    let Some(arrival) = swarm.send_signal(now, pid, cand, Signal::Hello) else {
        return false;
    };
    let lat = swarm.delay_us(cand, pid);
    let reply_at = arrival + lat;
    let reply_at = match swarm.link_fate(i, reply_at.as_us()) {
        PacketFate::Dropped => return false,
        PacketFate::Pass { extra_delay_us } => reply_at + extra_delay_us,
    };
    swarm.probe_states[i].neighbors.push(Neighbor {
        id: cand,
        expires_us: now_us.saturating_add(lifetime),
    });
    let ttl = swarm.ttl_to(cand, pid);
    swarm.capture(
        i,
        reply_at,
        cand,
        pid,
        Signal::Hello.wire_size(),
        ttl,
        PayloadKind::Signaling,
    );
    swarm.report.signal_packets += 1;
    swarm.m.handshakes_ok.inc();
    netaware_obs::event!(
        swarm.obs,
        Level::Debug,
        "swarm.handshake",
        now,
        "probe" = i,
        "peer" = cand.0,
        "ok" = true,
        "nat" = swarm.meta[cand.0 as usize].nat,
    );
    true
}

//! The behaviour layer: typed, per-concern protocol modules composed
//! into a stack and driven by the deterministic dispatcher.
//!
//! The paper distinguishes PPLive/SopCast/TVAnts purely by *behavioural*
//! signature — discovery cadence, buffer-map exchange, chunk scheduling,
//! churn reaction. This module makes that composition literal: a
//! [`BehaviourStack`] is the protocol, an
//! [`AppProfile`](crate::profiles::AppProfile) *constructs* one
//! ([`AppProfile::stack`](crate::profiles::AppProfile::stack)), and the
//! dispatcher in `swarm/dispatch.rs` is the only place a raw simulation
//! [`Event`] is ever matched (lint rule BH01 enforces this).
//!
//! ## Determinism contract
//!
//! Behaviour hooks never touch the scheduler directly. They emit typed
//! [`BehaviourAction`]s through [`Ctx`]; the dispatcher drains the
//! action queue in FIFO order after the hooks of one event ran, in
//! fixed behaviour-stack order (discovery, announce, churn-recovery,
//! scheduling, the optional epidemic push, then custom behaviours in
//! push order). Because the
//! scheduler breaks timestamp ties by insertion sequence, FIFO draining
//! preserves the exact insertion order the monolithic handler produced —
//! which is what keeps same-seed runs byte-identical across the
//! decomposition (pinned by `tests/golden_behaviours.rs`).

use super::state::Event;
use super::SwarmCore;
use crate::chunk::ChunkId;
use crate::peer::{PeerId, PeerInfo};
use netaware_obs::Obs;
use netaware_sim::{DetRng, SimTime};
use std::collections::VecDeque;

/// One deferred effect emitted by a behaviour hook.
///
/// Actions are the only way behaviours reach the scheduler or each
/// other; the dispatcher drains them in emission (FIFO) order, so the
/// order of `emit` calls *is* the order of scheduler insertions.
#[derive(Clone, Debug)]
pub enum BehaviourAction {
    /// Insert `ev` into the event queue at absolute sim time `at`.
    Schedule {
        /// Absolute sim time of the event.
        at: SimTime,
        /// The event to deliver.
        ev: Event,
    },
    /// Ask the discovery behaviour to attempt one neighbor acquisition
    /// for `probe` (dead-peer replacement path).
    Discover {
        /// Index of the probe that lost a neighbor.
        probe: usize,
    },
}

/// FIFO queue of actions emitted during one event's hooks.
#[derive(Default)]
pub(crate) struct Actions {
    pub(crate) queue: VecDeque<BehaviourAction>,
}

/// What a behaviour hook sees: mutable access to the swarm core (peer
/// tables, per-probe state slices, transfer machinery, obs) plus the
/// action queue of the event being dispatched.
pub struct Ctx<'c, 'a> {
    pub(crate) core: &'c mut SwarmCore<'a>,
    pub(crate) actions: &'c mut Actions,
    pub(crate) now: SimTime,
}

impl Ctx<'_, '_> {
    /// Sim time of the event being dispatched.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Emits a typed action; drained FIFO by the dispatcher after the
    /// current event's hooks ran.
    pub fn emit(&mut self, action: BehaviourAction) {
        self.actions.queue.push_back(action);
    }

    /// Schedules `ev` at absolute time `at` (sugar for
    /// [`BehaviourAction::Schedule`]).
    pub fn schedule(&mut self, at: SimTime, ev: Event) {
        self.emit(BehaviourAction::Schedule { at, ev });
    }

    /// Requests one neighbor-discovery attempt for `probe` (sugar for
    /// [`BehaviourAction::Discover`]).
    pub fn request_discovery(&mut self, probe: usize) {
        self.emit(BehaviourAction::Discover { probe });
    }

    /// Number of probe vantage points.
    pub fn n_probes(&self) -> usize {
        self.core.n_probes
    }

    /// The peer table (source, probes, externals).
    pub fn peers(&self) -> &[PeerInfo] {
        &self.core.peers
    }

    /// The observability handle events should be emitted through.
    pub fn obs(&self) -> &Obs {
        &self.core.obs
    }

    /// The private decision stream of probe `i`. Custom behaviours that
    /// draw from it perturb the byte-identity baseline (they consume
    /// draws the built-in stack would otherwise see) — that is expected
    /// for a custom stack, but a pure *observer* behaviour must not
    /// touch it.
    pub fn probe_rng(&mut self, i: usize) -> &mut DetRng {
        &mut self.core.probe_states[i].rng
    }
}

/// One protocol concern, driven by the dispatcher through typed hooks.
///
/// Every hook has a no-op default, so a behaviour implements only the
/// events it cares about. Hooks run in fixed stack order for each
/// event; effects that must reach the scheduler go through
/// [`Ctx::schedule`], never a direct queue push (lint rule BH01).
///
/// `Send` is required because the sharded engine moves behaviour stacks
/// onto worker threads (custom behaviours are never replicated — a
/// stack with customs falls back to one shard — but the bound must hold
/// for the type to cross the spawn boundary).
#[allow(unused_variables)]
pub trait Behaviour: Send {
    /// Short stable name, used to label this behaviour's node in the
    /// dispatch profile (`swarm.dispatch/behaviour.<name>`).
    fn name(&self) -> &'static str {
        "custom"
    }
    /// Called once before the event loop starts (after the initial
    /// tick/demand/halo processes are scheduled).
    fn on_start(&mut self, ctx: &mut Ctx) {}
    /// Protocol tick at probe `i`.
    fn on_tick(&mut self, ctx: &mut Ctx, i: usize) {}
    /// Aggregate external demand arrival at probe `i`.
    fn on_demand(&mut self, ctx: &mut Ctx, i: usize) {}
    /// Signalling-only discovery contact by probe `i`.
    fn on_halo(&mut self, ctx: &mut Ctx, i: usize) {}
    /// A chunk request arrived at its provider.
    fn on_serve(&mut self, ctx: &mut Ctx, provider: PeerId, to: PeerId, chunk: ChunkId) {}
    /// A chunk finished arriving at `to`.
    fn on_delivered(&mut self, ctx: &mut Ctx, to: PeerId, from: PeerId, chunk: ChunkId, est_bps: u64) {
    }
    /// An external peer's session ended (churn).
    fn on_depart(&mut self, ctx: &mut Ctx, peer: PeerId) {}
    /// A departed external rejoined the overlay (churn).
    fn on_arrive(&mut self, ctx: &mut Ctx, peer: PeerId) {}
}

/// The composed protocol: the built-in concerns in fixed dispatch
/// order (plus the optional epidemic push), then any custom behaviours
/// appended after them.
///
/// A stack is constructed by
/// [`AppProfile::stack`](crate::profiles::AppProfile::stack) — the
/// profile's parameters decide how each built-in behaves, which is what
/// makes "a profile" and "a behaviour composition" the same thing.
pub struct BehaviourStack {
    pub(crate) discovery: super::discovery::Discovery,
    pub(crate) announce: super::announce::Announce,
    pub(crate) recovery: super::churn_recovery::ChurnRecovery,
    pub(crate) scheduling: super::scheduling::Scheduling,
    /// Optional epidemic push built-in (profiles with a
    /// [`PushPolicy`](crate::profiles::PushPolicy)); runs after
    /// scheduling, before customs. `None` costs nothing — no hooks run,
    /// no draws happen — which keeps pull-only profiles byte-identical
    /// to the pre-epidemic engine.
    pub(crate) epidemic: Option<super::epidemic::EpidemicPush>,
    pub(crate) custom: Vec<Box<dyn Behaviour>>,
}

impl BehaviourStack {
    pub(crate) fn new(
        discovery: super::discovery::Discovery,
        announce: super::announce::Announce,
        recovery: super::churn_recovery::ChurnRecovery,
        scheduling: super::scheduling::Scheduling,
        epidemic: Option<super::epidemic::EpidemicPush>,
    ) -> Self {
        BehaviourStack {
            discovery,
            announce,
            recovery,
            scheduling,
            epidemic,
            custom: Vec::new(),
        }
    }

    /// Appends a custom behaviour. It runs *after* the built-ins on
    /// every event, in push order. A pure observer (no RNG draws, no
    /// actions) leaves runs byte-identical to the plain stack.
    pub fn push(&mut self, behaviour: Box<dyn Behaviour>) {
        self.custom.push(behaviour);
    }

    /// A shard replica of the stack: built-in behaviours are cloned with
    /// their full mid-run state (discovery tables and outages, the churn
    /// process's RNG position, parameters), customs are not replicated.
    /// Callers must force a single shard when `custom` is non-empty.
    pub(crate) fn clone_builtins(&self) -> BehaviourStack {
        debug_assert!(self.custom.is_empty(), "custom behaviours cannot shard");
        BehaviourStack {
            discovery: self.discovery.clone(),
            announce: self.announce.clone(),
            recovery: self.recovery.clone_replica(),
            scheduling: self.scheduling.clone(),
            epidemic: self.epidemic.clone(),
            custom: Vec::new(),
        }
    }
}

//! Announce behaviour: periodic buffer-map exchange.
//!
//! Owns the gossip side of the mesh-pull protocol: each tick a probe
//! sends buffer-map announcements to random neighbors and receives them
//! from random *external* neighbors (probe neighbors announce on their
//! own tick). The RX side is the dominant signalling overhead the paper
//! measures — PPLive's announce traffic alone exceeds the stream rate.

use super::behaviour::{Behaviour, Ctx};
use super::state::Event;
use crate::message::Signal;
use crate::peer::{PeerId, PeerRole};
use crate::profiles::AppProfile;
use netaware_sim::PacketFate;
use netaware_trace::PayloadKind;

/// The announce behaviour and its profile-derived parameters.
#[derive(Clone)]
pub(crate) struct Announce {
    /// Buffer maps (sent, received) per tick.
    tx_n: u32,
    rx_n: u32,
    tick_us: u64,
}

impl Announce {
    pub(crate) fn from_profile(p: &AppProfile) -> Self {
        Announce {
            tx_n: p.announces_per_tick.0,
            rx_n: p.announces_per_tick.1,
            tick_us: p.tick_us,
        }
    }
}

impl Behaviour for Announce {
    /// Buffer-map announcements: TX to random neighbors, RX from random
    /// external neighbors.
    fn on_tick(&mut self, ctx: &mut Ctx<'_, '_>, i: usize) {
        let now = ctx.now();
        let pid = PeerId((1 + i) as u32);
        let (tx_n, rx_n) = (self.tx_n, self.rx_n);
        let n_neigh = ctx.core.probe_states[i].disc.neighbors.len();
        if n_neigh == 0 {
            return;
        }
        // Gossip fan-out: how many neighbors this tick's announcements
        // could reach, and how many buffer maps actually go out.
        ctx.core.m.gossip_fanout.record(n_neigh);
        ctx.core.m.gossip_announcements.add(tx_n as u64);
        let tick = self.tick_us;
        for k in 0..tx_n {
            let core = &mut *ctx.core;
            let pick = core.probe_states[i].rng.range(0..n_neigh);
            let to = core.probe_states[i].disc.neighbors[pick].id;
            let at = now + (k as u64 * tick) / (tx_n.max(1) as u64 * 2);
            // Sender-side half here; a probe receiver charges its own
            // fate and RX capture when the packet reaches it (possibly
            // on another shard).
            let arrival = core.signal_tx(at, pid, to, Signal::BufferMap);
            let to_is_probe = core.probe_index(to).is_some();
            if let (Some(arrival), true) = (arrival, to_is_probe) {
                ctx.schedule(
                    arrival,
                    Event::SignalRx {
                        to,
                        from: pid,
                        size: Signal::BufferMap.wire_size(),
                    },
                );
            }
        }
        let core = &mut *ctx.core;
        // RX: sample external neighbors only.
        let ext_neighbors: Vec<PeerId> = core.probe_states[i]
            .disc
            .neighbors
            .iter()
            .map(|n| n.id)
            .filter(|id| core.peers[id.0 as usize].role == PeerRole::External)
            .collect();
        if ext_neighbors.is_empty() {
            return;
        }
        for k in 0..rx_n {
            let pick = core.probe_states[i].rng.range(0..ext_neighbors.len());
            let from = ext_neighbors[pick];
            let at = now + (k as u64 * tick) / (rx_n.max(1) as u64);
            // Incoming announces cross this probe's access link; a
            // faulty link silently eats some of them.
            let at = match core.link_fate(i, at.as_us()) {
                PacketFate::Dropped => continue,
                PacketFate::Pass { extra_delay_us } => at + extra_delay_us,
            };
            let ttl = core.ttl_to(from, pid);
            core.capture(
                i,
                at,
                from,
                pid,
                Signal::BufferMap.wire_size(),
                ttl,
                PayloadKind::Signaling,
            );
            core.report.signal_packets += 1;
        }
    }
}

//! The deterministic dispatcher: the **only** module that matches raw
//! simulation [`Event`]s or touches the scheduler (lint rule BH01
//! holds everywhere else in `crates/proto`).
//!
//! For every popped event the dispatcher runs the behaviour hooks in
//! fixed stack order — discovery, announce, churn-recovery, scheduling,
//! then custom behaviours in push order — and only then drains the
//! action queue FIFO into the scheduler. Because the scheduler breaks
//! timestamp ties by insertion sequence, this two-phase scheme inserts
//! events in exactly the order the monolithic handler did, which is
//! what keeps same-seed runs byte-identical across the decomposition
//! (ND01–ND05; pinned by `tests/golden_behaviours.rs`).

use super::behaviour::{Actions, Behaviour, BehaviourAction, BehaviourStack, Ctx};
use super::state::Event;
use super::SwarmCore;
use netaware_obs::{ProfCell, ProfSpan};
use netaware_sim::{Scheduler, SimTime};

/// Pre-registered profiler cells for the dispatch hot path: one per
/// built-in behaviour, one per custom behaviour (labelled by
/// [`Behaviour::name`]), one for the action drain. When the obs handle
/// is not profiling every cell is disabled and [`ProfCell::time`]
/// reduces to a bare closure call, keeping the disabled path within the
/// `obs_overhead` bench budget.
pub(crate) struct DispatchProf {
    discovery: ProfCell,
    announce: ProfCell,
    recovery: ProfCell,
    scheduling: ProfCell,
    custom: Vec<ProfCell>,
    drain: ProfCell,
}

impl DispatchProf {
    fn new(span: &ProfSpan, stack: &BehaviourStack) -> DispatchProf {
        DispatchProf {
            discovery: span.cell("behaviour.discovery"),
            announce: span.cell("behaviour.announce"),
            recovery: span.cell("behaviour.churn_recovery"),
            scheduling: span.cell("behaviour.scheduling"),
            custom: stack
                .custom
                .iter()
                .map(|b| span.cell(&format!("behaviour.{}", b.name())))
                .collect(),
            drain: span.cell("drain"),
        }
    }

    /// All-disabled cells (unit tests drive `deliver` directly).
    #[cfg(test)]
    pub(crate) fn disabled() -> DispatchProf {
        DispatchProf {
            discovery: ProfCell::disabled(),
            announce: ProfCell::disabled(),
            recovery: ProfCell::disabled(),
            scheduling: ProfCell::disabled(),
            custom: Vec::new(),
            drain: ProfCell::disabled(),
        }
    }
}

/// Runs the event loop from time zero to `horizon`: schedules the
/// initial per-probe processes, fires the `on_start` hooks, and
/// dispatches until the queue runs dry or passes the horizon.
pub(crate) fn run(core: &mut SwarmCore<'_>, stack: &mut BehaviourStack, horizon: SimTime) {
    let mut sched: Scheduler<Event> = Scheduler::new();
    let dspan = core.obs.pspan("swarm.dispatch");
    let prof = DispatchProf::new(&dspan, stack);

    // Stagger initial ticks across one tick interval so probes do not
    // act in lockstep.
    let tick = core.cfg.profile.tick_us;
    for p in 0..core.n_probes {
        let offset = core.rng.range(0..tick.max(1));
        sched.push(SimTime::from_us(offset), Event::Tick(p as u32));
        // Demand and halo processes start once the stream exists.
        let warmup = core.cfg.stream.chunk_interval_us()
            * (core.cfg.profile.buffer_delay_chunks as u64 + 2);
        let d0 = warmup + core.rng.range(0..1_000_000);
        sched.push(SimTime::from_us(d0), Event::Demand(p as u32));
        if core.cfg.profile.halo_contacts_per_sec > 0.0 {
            let h0 = core.rng.range(0..2_000_000);
            sched.push(SimTime::from_us(h0), Event::Halo(p as u32));
        }
    }

    // Start-of-run hooks (churn seeding lives here), then drain their
    // actions so the seeded departures/arrivals enter the queue in
    // emission order.
    let mut actions = Actions::default();
    {
        let mut ctx = Ctx {
            core: &mut *core,
            actions: &mut actions,
            now: SimTime::ZERO,
        };
        stack.discovery.on_start(&mut ctx);
        stack.announce.on_start(&mut ctx);
        stack.recovery.on_start(&mut ctx);
        stack.scheduling.on_start(&mut ctx);
        for b in &mut stack.custom {
            b.on_start(&mut ctx);
        }
    }
    drain(core, stack, &mut sched, &mut actions, SimTime::ZERO);

    loop {
        match sched.peek_time() {
            Some(t) if t <= horizon => {}
            _ => break,
        }
        let Some((now, ev)) = sched.pop() else { break };
        deliver(core, stack, &mut sched, &mut actions, now, ev, &prof);
    }
    core.report.events_dispatched = sched.dispatched();
    dspan.add_events(sched.dispatched());
    dspan.add_sim_us(horizon.as_us());
}

/// Dispatches one event: hooks in stack order, then the FIFO drain,
/// then — for ticks — the next tick of the protocol clock (after the
/// drained chunk serves, matching the legacy insertion order).
pub(crate) fn deliver(
    core: &mut SwarmCore<'_>,
    stack: &mut BehaviourStack,
    sched: &mut Scheduler<Event>,
    actions: &mut Actions,
    now: SimTime,
    ev: Event,
    prof: &DispatchProf,
) {
    debug_assert!(actions.queue.is_empty(), "scratch action queue not drained");
    {
        let mut ctx = Ctx {
            core: &mut *core,
            actions: &mut *actions,
            now,
        };
        match ev {
            Event::Tick(i) => {
                let i = i as usize;
                prof.discovery.time(|| stack.discovery.on_tick(&mut ctx, i));
                prof.announce.time(|| stack.announce.on_tick(&mut ctx, i));
                prof.recovery.time(|| stack.recovery.on_tick(&mut ctx, i));
                prof.scheduling.time(|| stack.scheduling.on_tick(&mut ctx, i));
                for (idx, b) in stack.custom.iter_mut().enumerate() {
                    match prof.custom.get(idx) {
                        Some(c) => c.time(|| b.on_tick(&mut ctx, i)),
                        None => b.on_tick(&mut ctx, i),
                    }
                }
            }
            Event::Demand(i) => {
                let i = i as usize;
                prof.discovery.time(|| stack.discovery.on_demand(&mut ctx, i));
                prof.announce.time(|| stack.announce.on_demand(&mut ctx, i));
                prof.recovery.time(|| stack.recovery.on_demand(&mut ctx, i));
                prof.scheduling.time(|| stack.scheduling.on_demand(&mut ctx, i));
                for (idx, b) in stack.custom.iter_mut().enumerate() {
                    match prof.custom.get(idx) {
                        Some(c) => c.time(|| b.on_demand(&mut ctx, i)),
                        None => b.on_demand(&mut ctx, i),
                    }
                }
            }
            Event::Halo(i) => {
                let i = i as usize;
                prof.discovery.time(|| stack.discovery.on_halo(&mut ctx, i));
                prof.announce.time(|| stack.announce.on_halo(&mut ctx, i));
                prof.recovery.time(|| stack.recovery.on_halo(&mut ctx, i));
                prof.scheduling.time(|| stack.scheduling.on_halo(&mut ctx, i));
                for (idx, b) in stack.custom.iter_mut().enumerate() {
                    match prof.custom.get(idx) {
                        Some(c) => c.time(|| b.on_halo(&mut ctx, i)),
                        None => b.on_halo(&mut ctx, i),
                    }
                }
            }
            Event::Serve {
                provider,
                to,
                chunk,
            } => {
                prof.discovery.time(|| stack.discovery.on_serve(&mut ctx, provider, to, chunk));
                prof.announce.time(|| stack.announce.on_serve(&mut ctx, provider, to, chunk));
                prof.recovery.time(|| stack.recovery.on_serve(&mut ctx, provider, to, chunk));
                prof.scheduling.time(|| stack.scheduling.on_serve(&mut ctx, provider, to, chunk));
                for (idx, b) in stack.custom.iter_mut().enumerate() {
                    match prof.custom.get(idx) {
                        Some(c) => c.time(|| b.on_serve(&mut ctx, provider, to, chunk)),
                        None => b.on_serve(&mut ctx, provider, to, chunk),
                    }
                }
            }
            Event::Delivered {
                to,
                from,
                chunk,
                est_bps,
            } => {
                prof.discovery.time(|| stack.discovery.on_delivered(&mut ctx, to, from, chunk, est_bps));
                prof.announce.time(|| stack.announce.on_delivered(&mut ctx, to, from, chunk, est_bps));
                prof.recovery.time(|| stack.recovery.on_delivered(&mut ctx, to, from, chunk, est_bps));
                prof.scheduling.time(|| stack.scheduling.on_delivered(&mut ctx, to, from, chunk, est_bps));
                for (idx, b) in stack.custom.iter_mut().enumerate() {
                    match prof.custom.get(idx) {
                        Some(c) => c.time(|| b.on_delivered(&mut ctx, to, from, chunk, est_bps)),
                        None => b.on_delivered(&mut ctx, to, from, chunk, est_bps),
                    }
                }
            }
            Event::Depart(id) => {
                prof.discovery.time(|| stack.discovery.on_depart(&mut ctx, id));
                prof.announce.time(|| stack.announce.on_depart(&mut ctx, id));
                prof.recovery.time(|| stack.recovery.on_depart(&mut ctx, id));
                prof.scheduling.time(|| stack.scheduling.on_depart(&mut ctx, id));
                for (idx, b) in stack.custom.iter_mut().enumerate() {
                    match prof.custom.get(idx) {
                        Some(c) => c.time(|| b.on_depart(&mut ctx, id)),
                        None => b.on_depart(&mut ctx, id),
                    }
                }
            }
            Event::Arrive(id) => {
                prof.discovery.time(|| stack.discovery.on_arrive(&mut ctx, id));
                prof.announce.time(|| stack.announce.on_arrive(&mut ctx, id));
                prof.recovery.time(|| stack.recovery.on_arrive(&mut ctx, id));
                prof.scheduling.time(|| stack.scheduling.on_arrive(&mut ctx, id));
                for (idx, b) in stack.custom.iter_mut().enumerate() {
                    match prof.custom.get(idx) {
                        Some(c) => c.time(|| b.on_arrive(&mut ctx, id)),
                        None => b.on_arrive(&mut ctx, id),
                    }
                }
            }
        }
    }
    prof.drain.time(|| drain(core, stack, sched, actions, now));
    // The dispatcher owns the protocol clock: one tick reschedules the
    // next, inserted after the drained actions (the monolithic handler
    // pushed the chunk serves first, then the tick).
    if let Event::Tick(i) = ev {
        sched.push(now + core.cfg.profile.tick_us, Event::Tick(i));
    }
}

/// Drains the action queue FIFO. `Schedule` actions become scheduler
/// insertions in emission order; `Discover` actions re-enter the
/// discovery behaviour (which may emit further actions — the loop runs
/// until the queue is dry).
fn drain(
    core: &mut SwarmCore<'_>,
    stack: &mut BehaviourStack,
    sched: &mut Scheduler<Event>,
    actions: &mut Actions,
    now: SimTime,
) {
    while let Some(action) = actions.queue.pop_front() {
        match action {
            BehaviourAction::Schedule { at, ev } => sched.push(at, ev),
            BehaviourAction::Discover { probe } => {
                let mut ctx = Ctx {
                    core: &mut *core,
                    actions: &mut *actions,
                    now,
                };
                stack.discovery.try_discover(&mut ctx, probe, now.as_us());
            }
        }
    }
}

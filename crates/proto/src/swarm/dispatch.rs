//! The deterministic dispatcher: the **only** module that matches raw
//! simulation [`Event`]s or touches the scheduler (lint rule BH01
//! holds everywhere else in `crates/proto`).
//!
//! For every popped event the dispatcher runs the behaviour hooks in
//! fixed stack order — discovery, announce, churn-recovery, scheduling,
//! the optional epidemic push, then custom behaviours in push order —
//! and only then drains the
//! action queue FIFO into the scheduler. Because the scheduler breaks
//! timestamp ties by a canonical `(origin, oseq)` key assigned at
//! insertion, this two-phase scheme inserts events in exactly the order
//! the monolithic handler did, which is what keeps same-seed runs
//! byte-identical across the decomposition (ND01–ND05; pinned by
//! `tests/golden_behaviours.rs`).
//!
//! ## The sharded engine
//!
//! With `--shards N` the dispatcher becomes the driver of a
//! conservative parallel discrete-event simulation:
//!
//! 1. **Bootstrap** (single-threaded): initial tick/demand/halo
//!    processes and the `on_start` hooks run on the unified core; the
//!    resulting events carry the `ORIGIN_INIT` lane.
//! 2. **Partition**: probes are grouped by home AS
//!    ([`netaware_sim::partition`]) so the cheapest links stay
//!    shard-internal; the conservative lookahead Δ is the minimum
//!    cross-shard one-way delay — every cross-shard event carries at
//!    least one inter-probe propagation delay, so it always lands ≥ Δ
//!    after its emission.
//! 3. **Replicate**: each worker gets a full clone of the swarm state.
//!    It *mutates* everything (churn events are broadcast and processed
//!    in lockstep) but is the *authority* only for its owned probes;
//!    non-owned mutations are discarded at merge. Externals' per-probe
//!    serializers ride with the probe that owns them, so no external
//!    state needs coordination.
//! 4. **Windows**: [`netaware_sim::run_sharded`] advances all workers
//!    in `[g, g+Δ)` windows; cross-shard events travel through the
//!    outbox between windows, keyed by their deterministic
//!    `(origin, oseq)` lane so the receiving scheduler reproduces the
//!    exact single-queue pop order.
//! 5. **Merge**: owned probe state, traces and per-shard reports fold
//!    back into the parent core; per-shard obs buffers are replayed in
//!    canonical key order, byte-identical to the serial emission order.
//!
//! Every scheduler insertion goes through the lane of the event being
//! *handled* (`handler_lane`), each lane is advanced by exactly one
//! shard (or by all shards in lockstep, for churn), so keys — and
//! therefore pop order, RNG draw order, trace bytes and the obs log —
//! are invariant under the shard count.

use super::behaviour::{Actions, Behaviour, BehaviourAction, BehaviourStack, Ctx};
use super::state::Event;
use super::{ShardRole, SwarmCore, SwarmMetrics};
use crate::peer::PeerId;
use netaware_obs::{Level, ProfCell, ProfSpan, ShardBufferSink};
use netaware_sim::{
    min_cross_delay_us, partition, run_sharded, Outbox, PacketFate, Scheduler, ShardPlan,
    ShardWorker, SimTime, ORIGIN_CHURN, ORIGIN_INIT,
};
use netaware_trace::PayloadKind;
use std::sync::Arc;

/// A cross-shard event in flight: the canonical scheduler key assigned
/// by the emitting lane, plus the event itself.
type ShardMsg = (u32, u32, Event);

/// Pre-registered profiler cells for the dispatch hot path: one per
/// built-in behaviour, one per custom behaviour (labelled by
/// [`Behaviour::name`]), one for the receiver-side transfer work, one
/// for the action drain. When the obs handle is not profiling every
/// cell is disabled and [`ProfCell::time`] reduces to a bare closure
/// call, keeping the disabled path within the `obs_overhead` bench
/// budget. Cells of all shard workers attach to the same profile nodes,
/// so the merged tree reports swarm-wide hook costs.
pub(crate) struct DispatchProf {
    discovery: ProfCell,
    announce: ProfCell,
    recovery: ProfCell,
    scheduling: ProfCell,
    epidemic: ProfCell,
    custom: Vec<ProfCell>,
    transfer: ProfCell,
    drain: ProfCell,
}

impl DispatchProf {
    fn new(span: &ProfSpan, stack: &BehaviourStack) -> DispatchProf {
        DispatchProf {
            discovery: span.cell("behaviour.discovery"),
            announce: span.cell("behaviour.announce"),
            recovery: span.cell("behaviour.churn_recovery"),
            scheduling: span.cell("behaviour.scheduling"),
            epidemic: span.cell("behaviour.epidemic"),
            custom: stack
                .custom
                .iter()
                .map(|b| span.cell(&format!("behaviour.{}", b.name())))
                .collect(),
            transfer: span.cell("transfer.rx"),
            drain: span.cell("drain"),
        }
    }

    /// All-disabled cells (unit tests drive `deliver` directly).
    #[cfg(test)]
    pub(crate) fn disabled() -> DispatchProf {
        DispatchProf {
            discovery: ProfCell::disabled(),
            announce: ProfCell::disabled(),
            recovery: ProfCell::disabled(),
            scheduling: ProfCell::disabled(),
            epidemic: ProfCell::disabled(),
            custom: Vec::new(),
            transfer: ProfCell::disabled(),
            drain: ProfCell::disabled(),
        }
    }
}

/// Per-lane insertion counters. Each probe lane (`1 + probe_idx`) is
/// advanced only while handling that probe's events — which exactly one
/// shard does — and the churn lane is advanced identically by every
/// shard (broadcast events are handled in lockstep), so the produced
/// `(origin, oseq)` keys are globally unique and invariant under the
/// shard layout.
pub(crate) struct LaneSeqs {
    probe: Vec<u32>,
    churn: u32,
}

impl LaneSeqs {
    pub(crate) fn new(n_probes: usize) -> LaneSeqs {
        LaneSeqs {
            probe: vec![0; n_probes],
            churn: 0,
        }
    }

    fn next(&mut self, lane: u32) -> u32 {
        let slot = if lane == ORIGIN_CHURN {
            &mut self.churn
        } else {
            &mut self.probe[lane as usize - 1]
        };
        let s = *slot;
        *slot = slot.wrapping_add(1);
        s
    }
}

/// The lane that handles `ev`: the probe whose hooks (and RNG stream)
/// the event drives, or the churn lane for broadcast events. Every
/// scheduler insertion made while handling an event is keyed by the
/// handled event's lane.
fn handler_lane(core: &SwarmCore<'_>, ev: &Event) -> u32 {
    match ev {
        Event::Tick(i) | Event::Demand(i) | Event::Halo(i) => 1 + *i,
        Event::Serve { provider, to, .. } => {
            if core.is_probe(*provider) {
                provider.0
            } else {
                // External/source providers are simulated on the
                // requesting probe's shard.
                to.0
            }
        }
        Event::ChunkRx { to, .. } | Event::SignalRx { to, .. } | Event::Delivered { to, .. } => {
            to.0
        }
        Event::Depart(_) | Event::Arrive(_) => ORIGIN_CHURN,
    }
}

/// Where an insertion of `ev` must land.
enum Route {
    /// This core's own scheduler (also used for broadcast events: every
    /// shard schedules its own replica in lockstep).
    Local,
    /// Another shard's scheduler, via the outbox.
    Remote(usize),
}

fn route_of(core: &SwarmCore<'_>, lane: u32) -> Route {
    if lane == ORIGIN_CHURN {
        return Route::Local;
    }
    match &core.shard.plan {
        None => Route::Local,
        Some(plan) => {
            let dest = plan.of_entity[lane as usize - 1];
            if dest == core.shard.idx {
                Route::Local
            } else {
                Route::Remote(dest)
            }
        }
    }
}

/// Runs the event loop from time zero to `horizon`: schedules the
/// initial per-probe processes, fires the `on_start` hooks, and
/// dispatches until the queue runs dry or passes the horizon — on one
/// scheduler, or on `shards` conservatively synchronised workers.
pub(crate) fn run(
    core: &mut SwarmCore<'_>,
    stack: &mut BehaviourStack,
    horizon: SimTime,
    shards: usize,
) {
    let dspan = core.obs.pspan("swarm.dispatch");

    // ---- Bootstrap (single-threaded, unified core). --------------------
    // Stagger initial ticks across one tick interval so probes do not
    // act in lockstep. All bootstrap events ride the ORIGIN_INIT lane:
    // their keys predate any handling and are identical for every shard
    // layout.
    let mut boot: Vec<(SimTime, u32, Event)> = Vec::new();
    let mut bseq = 0u32;
    let mut push_boot = |at: SimTime, ev: Event, bseq: &mut u32| {
        boot.push((at, *bseq, ev));
        *bseq = bseq.wrapping_add(1);
    };
    let tick = core.cfg.profile.tick_us;
    for p in 0..core.n_probes {
        let offset = core.rng.range(0..tick.max(1));
        push_boot(SimTime::from_us(offset), Event::Tick(p as u32), &mut bseq);
        // Demand and halo processes start once the stream exists.
        let warmup = core.cfg.stream.chunk_interval_us()
            * (core.cfg.profile.buffer_delay_chunks as u64 + 2);
        let d0 = warmup + core.rng.range(0..1_000_000);
        push_boot(SimTime::from_us(d0), Event::Demand(p as u32), &mut bseq);
        if core.cfg.profile.halo_contacts_per_sec > 0.0 {
            let h0 = core.rng.range(0..2_000_000);
            push_boot(SimTime::from_us(h0), Event::Halo(p as u32), &mut bseq);
        }
    }

    // Start-of-run hooks (churn seeding lives here), then drain their
    // actions so the seeded departures/arrivals enter the queue in
    // emission order. Discover actions re-enter discovery immediately
    // (single-threaded here, so the unified core is the authority).
    let mut actions = Actions::default();
    {
        let mut ctx = Ctx {
            core: &mut *core,
            actions: &mut actions,
            now: SimTime::ZERO,
        };
        stack.discovery.on_start(&mut ctx);
        stack.announce.on_start(&mut ctx);
        stack.recovery.on_start(&mut ctx);
        stack.scheduling.on_start(&mut ctx);
        if let Some(e) = stack.epidemic.as_mut() {
            e.on_start(&mut ctx);
        }
        for b in &mut stack.custom {
            b.on_start(&mut ctx);
        }
    }
    while let Some(action) = actions.queue.pop_front() {
        match action {
            BehaviourAction::Schedule { at, ev } => push_boot(at, ev, &mut bseq),
            BehaviourAction::Discover { probe } => {
                let mut ctx = Ctx {
                    core: &mut *core,
                    actions: &mut actions,
                    now: SimTime::ZERO,
                };
                stack.discovery.try_discover(&mut ctx, probe, 0);
            }
        }
    }

    // ---- Choose the engine. --------------------------------------------
    // Custom behaviours hold arbitrary un-replicable state, and fewer
    // than two probes cannot be split; both force the serial loop.
    let requested = if !stack.custom.is_empty() || core.n_probes < 2 {
        1
    } else {
        shards.max(1)
    };
    let plan = if requested > 1 {
        let groups: Vec<u64> = (0..core.n_probes)
            .map(|i| {
                core.meta[1 + i]
                    .asn
                    .map(|a| a.0 as u64)
                    // Unannounced prefixes: each its own group, offset
                    // past the 32-bit ASN space.
                    .unwrap_or((1u64 << 33) + i as u64)
            })
            .collect();
        let weights = vec![1u64; core.n_probes];
        partition(&groups, &weights, requested)
    } else {
        ShardPlan::single(core.n_probes)
    };

    let (dispatched, saturated) = if plan.n_shards <= 1 {
        run_serial(core, stack, horizon, &dspan, boot)
    } else {
        run_parallel(core, stack, horizon, &dspan, boot, Arc::new(plan))
    };

    core.report.events_dispatched = dispatched;
    dspan.add_events(dispatched);
    dspan.add_sim_us(horizon.as_us());
    if saturated > 0 {
        // Past-time insertions were clamped to "now" (the scheduler's
        // saturating path; `Scheduler::try_push` is the typed-error
        // alternative). Zero on healthy runs — worth a warning when not.
        netaware_obs::event!(
            core.obs,
            Level::Warn,
            "swarm.schedule_saturated",
            horizon,
            "events" = saturated,
        );
    }
}

/// The serial engine: one scheduler, one core, events processed in key
/// order to the horizon. Obs events are still routed through a tagged
/// buffer and replayed in key order at the end, so the emission order
/// is *defined* by the canonical key — which is what makes the sharded
/// engines byte-compatible with this one.
fn run_serial(
    core: &mut SwarmCore<'_>,
    stack: &mut BehaviourStack,
    horizon: SimTime,
    dspan: &ProfSpan,
    boot: Vec<(SimTime, u32, Event)>,
) -> (u64, u64) {
    let prof = DispatchProf::new(dspan, stack);
    let mut sched: Scheduler<Event> = Scheduler::new();
    for (at, oseq, ev) in boot {
        sched.push_keyed(at, ORIGIN_INIT, oseq, ev);
    }

    let dest = core.obs.sink();
    let saved_obs = core.obs.clone();
    let buf = dest.map(|d| {
        let buf = Arc::new(ShardBufferSink::new(d));
        core.obs = saved_obs.fork(buf.clone());
        core.m = SwarmMetrics::register(&core.obs);
        core.shard.tag_sink = Some(buf.clone());
        core.shard.sub_seq = vec![0; core.n_probes];
        buf
    });

    let mut seq = LaneSeqs::new(core.n_probes);
    let mut actions = Actions::default();
    let mut outbox: Outbox<ShardMsg> = Outbox::new();
    sched.run_window_keyed(horizon.as_us() + 1, |sched, now, key, ev| {
        if let Some(sink) = &core.shard.tag_sink {
            sink.set_tag(now.as_us(), key.0, key.1);
        }
        core.shard.in_churn = matches!(ev, Event::Depart(_) | Event::Arrive(_));
        deliver(
            core, stack, sched, &mut actions, &mut seq, &mut outbox, now, ev, &prof,
        );
        core.shard.in_churn = false;
    });
    debug_assert!(outbox.is_empty(), "serial run routed an event off-core");

    if let Some(buf) = buf {
        core.shard.tag_sink = None;
        core.obs = saved_obs;
        core.m = SwarmMetrics::register(&core.obs);
        if let Some(dest) = core.obs.sink() {
            netaware_obs::replay_merged(vec![buf.take()], dest.as_ref());
        }
    }
    (sched.dispatched(), sched.saturated())
}

/// One shard worker: a full replica of the swarm advancing its owned
/// probes' lanes, exchanging cross-shard events through the outbox.
struct SwarmShard<'a> {
    core: SwarmCore<'a>,
    stack: BehaviourStack,
    sched: Scheduler<Event>,
    seq: LaneSeqs,
    prof: DispatchProf,
    actions: Actions,
    /// Broadcast (churn) events this worker popped; every worker pops
    /// the same ones, so the merged event total counts them once.
    churn_pops: u64,
}

impl ShardWorker for SwarmShard<'_> {
    type Msg = ShardMsg;

    fn next_time_us(&mut self) -> Option<u64> {
        self.sched.peek_time().map(|t| t.as_us())
    }

    fn run_window(&mut self, _start_us: u64, end_us: u64, outbox: &mut Outbox<ShardMsg>) {
        let SwarmShard {
            core,
            stack,
            sched,
            seq,
            prof,
            actions,
            churn_pops,
        } = self;
        sched.run_window_keyed(end_us, |sched, now, key, ev| {
            if let Some(sink) = &core.shard.tag_sink {
                sink.set_tag(now.as_us(), key.0, key.1);
            }
            if matches!(ev, Event::Depart(_) | Event::Arrive(_)) {
                *churn_pops += 1;
                core.shard.in_churn = true;
            }
            deliver(core, stack, sched, actions, seq, outbox, now, ev, prof);
            core.shard.in_churn = false;
        });
    }

    fn accept(&mut self, _src: usize, msgs: Vec<(u64, ShardMsg)>) {
        for (at_us, (origin, oseq, ev)) in msgs {
            self.sched.push_keyed(SimTime::from_us(at_us), origin, oseq, ev);
        }
    }
}

/// The parallel engine: replicate, window, merge (see the module docs).
fn run_parallel(
    core: &mut SwarmCore<'_>,
    stack: &mut BehaviourStack,
    horizon: SimTime,
    dspan: &ProfSpan,
    boot: Vec<(SimTime, u32, Event)>,
    plan: Arc<ShardPlan>,
) -> (u64, u64) {
    let n = plan.n_shards;
    // The conservative lookahead: the cheapest cross-shard link bounds
    // how far ahead any cross-shard event can land.
    let lookahead = min_cross_delay_us(&plan, |a, b| {
        let ia = core.meta[1 + a].ip;
        let ib = core.meta[1 + b].ip;
        core.env.latency.one_way_us(core.env.registry, ia, ib)
    })
    .unwrap_or(1)
    .max(1);

    let dest = core.obs.sink();
    let mut workers: Vec<SwarmShard<'_>> = (0..n)
        .map(|s| {
            let (obs, tag_sink) = match &dest {
                Some(d) => {
                    let buf = Arc::new(ShardBufferSink::new(Arc::clone(d)));
                    (core.obs.fork(buf.clone()), Some(buf))
                }
                None => (core.obs.clone(), None),
            };
            let m = SwarmMetrics::register(&obs);
            let shard_core = SwarmCore {
                cfg: core.cfg.clone(),
                env: core.env,
                peers: Arc::clone(&core.peers),
                meta: Arc::clone(&core.meta),
                n_probes: core.n_probes,
                probe_states: core.probe_states.clone(),
                traces: core.traces.clone(),
                rng: core.rng.clone(),
                report: Default::default(),
                obs,
                m,
                links: core.links.clone(),
                offline: core.offline.clone(),
                shard: ShardRole {
                    plan: Some(Arc::clone(&plan)),
                    idx: s,
                    tag_sink,
                    sub_seq: vec![0; core.n_probes],
                    in_churn: false,
                },
            };
            let shard_stack = stack.clone_builtins();
            let mut sched: Scheduler<Event> = Scheduler::new();
            for (at, oseq, ev) in &boot {
                let lane = handler_lane(&shard_core, ev);
                let owned = lane == ORIGIN_CHURN
                    || plan.of_entity[lane as usize - 1] == s;
                if owned {
                    sched.push_keyed(*at, ORIGIN_INIT, *oseq, ev.clone());
                }
            }
            let prof = DispatchProf::new(dspan, &shard_stack);
            SwarmShard {
                core: shard_core,
                stack: shard_stack,
                sched,
                seq: LaneSeqs::new(core.n_probes),
                prof,
                actions: Actions::default(),
                churn_pops: 0,
            }
        })
        .collect();

    run_sharded(&mut workers, lookahead, horizon.as_us());

    // ---- Merge. --------------------------------------------------------
    let mut dispatched = 0u64;
    let mut saturated = 0u64;
    let mut buffers = Vec::with_capacity(n);
    for (s, w) in workers.iter_mut().enumerate() {
        // Owned probe state and traces: the shard replica is the
        // authority; everything else in it is a discarded mirror.
        for i in 0..core.n_probes {
            if plan.of_entity[i] == s {
                std::mem::swap(&mut core.probe_states[i], &mut w.core.probe_states[i]);
                std::mem::swap(&mut core.traces[i], &mut w.core.traces[i]);
            }
        }
        core.report.absorb(&w.core.report);
        // Every worker pops every broadcast event; count them once.
        dispatched += w.sched.dispatched() - w.churn_pops;
        saturated += w.sched.saturated();
        if let Some(buf) = &w.core.shard.tag_sink {
            buffers.push(buf.take());
        }
    }
    dispatched += workers[0].churn_pops;
    // The offline set advanced in lockstep; adopt shard 0's.
    std::mem::swap(&mut core.offline, &mut workers[0].core.offline);
    drop(workers);

    if let Some(dest) = dest {
        netaware_obs::replay_merged(buffers, dest.as_ref());
    }
    (dispatched, saturated)
}

/// Dispatches one event: the receiver-side transfer preambles, hooks in
/// stack order, then the FIFO drain, then — for ticks — the next tick
/// of the protocol clock (after the drained chunk serves, matching the
/// legacy insertion order).
#[allow(clippy::too_many_arguments)]
pub(crate) fn deliver(
    core: &mut SwarmCore<'_>,
    stack: &mut BehaviourStack,
    sched: &mut Scheduler<Event>,
    actions: &mut Actions,
    seq: &mut LaneSeqs,
    outbox: &mut Outbox<ShardMsg>,
    now: SimTime,
    ev: Event,
    prof: &DispatchProf,
) {
    debug_assert!(actions.queue.is_empty(), "scratch action queue not drained");
    let lane = handler_lane(core, &ev);
    {
        let mut ctx = Ctx {
            core: &mut *core,
            actions: &mut *actions,
            now,
        };
        match &ev {
            Event::Tick(i) => {
                let i = *i as usize;
                prof.discovery.time(|| stack.discovery.on_tick(&mut ctx, i));
                prof.announce.time(|| stack.announce.on_tick(&mut ctx, i));
                prof.recovery.time(|| stack.recovery.on_tick(&mut ctx, i));
                prof.scheduling.time(|| stack.scheduling.on_tick(&mut ctx, i));
                if let Some(e) = stack.epidemic.as_mut() {
                    prof.epidemic.time(|| e.on_tick(&mut ctx, i));
                }
                for (idx, b) in stack.custom.iter_mut().enumerate() {
                    match prof.custom.get(idx) {
                        Some(c) => c.time(|| b.on_tick(&mut ctx, i)),
                        None => b.on_tick(&mut ctx, i),
                    }
                }
            }
            Event::Demand(i) => {
                let i = *i as usize;
                prof.discovery.time(|| stack.discovery.on_demand(&mut ctx, i));
                prof.announce.time(|| stack.announce.on_demand(&mut ctx, i));
                prof.recovery.time(|| stack.recovery.on_demand(&mut ctx, i));
                prof.scheduling.time(|| stack.scheduling.on_demand(&mut ctx, i));
                if let Some(e) = stack.epidemic.as_mut() {
                    prof.epidemic.time(|| e.on_demand(&mut ctx, i));
                }
                for (idx, b) in stack.custom.iter_mut().enumerate() {
                    match prof.custom.get(idx) {
                        Some(c) => c.time(|| b.on_demand(&mut ctx, i)),
                        None => b.on_demand(&mut ctx, i),
                    }
                }
            }
            Event::Halo(i) => {
                let i = *i as usize;
                prof.discovery.time(|| stack.discovery.on_halo(&mut ctx, i));
                prof.announce.time(|| stack.announce.on_halo(&mut ctx, i));
                prof.recovery.time(|| stack.recovery.on_halo(&mut ctx, i));
                prof.scheduling.time(|| stack.scheduling.on_halo(&mut ctx, i));
                if let Some(e) = stack.epidemic.as_mut() {
                    prof.epidemic.time(|| e.on_halo(&mut ctx, i));
                }
                for (idx, b) in stack.custom.iter_mut().enumerate() {
                    match prof.custom.get(idx) {
                        Some(c) => c.time(|| b.on_halo(&mut ctx, i)),
                        None => b.on_halo(&mut ctx, i),
                    }
                }
            }
            Event::Serve {
                provider,
                to,
                chunk,
                deferred,
            } => {
                let (provider, to, chunk, deferred) = (*provider, *to, *chunk, *deferred);
                if !deferred && serve_preamble(&mut ctx, provider, to, chunk) {
                    return_drain(core, stack, sched, actions, seq, outbox, now, lane, prof);
                    return;
                }
                prof.discovery.time(|| stack.discovery.on_serve(&mut ctx, provider, to, chunk));
                prof.announce.time(|| stack.announce.on_serve(&mut ctx, provider, to, chunk));
                prof.recovery.time(|| stack.recovery.on_serve(&mut ctx, provider, to, chunk));
                prof.scheduling.time(|| stack.scheduling.on_serve(&mut ctx, provider, to, chunk));
                if let Some(e) = stack.epidemic.as_mut() {
                    prof.epidemic.time(|| e.on_serve(&mut ctx, provider, to, chunk));
                }
                for (idx, b) in stack.custom.iter_mut().enumerate() {
                    match prof.custom.get(idx) {
                        Some(c) => c.time(|| b.on_serve(&mut ctx, provider, to, chunk)),
                        None => b.on_serve(&mut ctx, provider, to, chunk),
                    }
                }
            }
            Event::ChunkRx {
                to,
                from,
                chunk,
                train,
            } => {
                let (to, from, chunk) = (*to, *from, *chunk);
                prof.transfer.time(|| {
                    if let Some(ti) = ctx.core.probe_index(to) {
                        ctx.core.receive_chunk_train(ctx.actions, ti, from, chunk, train);
                    }
                });
            }
            Event::SignalRx { to, from, size } => {
                let (to, from, size) = (*to, *from, *size);
                prof.transfer.time(|| {
                    if let Some(ti) = ctx.core.probe_index(to) {
                        ctx.core.receive_signal(now, from, ti, size);
                    }
                });
            }
            Event::Delivered {
                to,
                from,
                chunk,
                est_bps,
            } => {
                let (to, from, chunk, est_bps) = (*to, *from, *chunk, *est_bps);
                prof.discovery.time(|| stack.discovery.on_delivered(&mut ctx, to, from, chunk, est_bps));
                prof.announce.time(|| stack.announce.on_delivered(&mut ctx, to, from, chunk, est_bps));
                prof.recovery.time(|| stack.recovery.on_delivered(&mut ctx, to, from, chunk, est_bps));
                prof.scheduling.time(|| stack.scheduling.on_delivered(&mut ctx, to, from, chunk, est_bps));
                if let Some(e) = stack.epidemic.as_mut() {
                    prof.epidemic.time(|| e.on_delivered(&mut ctx, to, from, chunk, est_bps));
                }
                for (idx, b) in stack.custom.iter_mut().enumerate() {
                    match prof.custom.get(idx) {
                        Some(c) => c.time(|| b.on_delivered(&mut ctx, to, from, chunk, est_bps)),
                        None => b.on_delivered(&mut ctx, to, from, chunk, est_bps),
                    }
                }
            }
            Event::Depart(id) => {
                let id = *id;
                prof.discovery.time(|| stack.discovery.on_depart(&mut ctx, id));
                prof.announce.time(|| stack.announce.on_depart(&mut ctx, id));
                prof.recovery.time(|| stack.recovery.on_depart(&mut ctx, id));
                prof.scheduling.time(|| stack.scheduling.on_depart(&mut ctx, id));
                if let Some(e) = stack.epidemic.as_mut() {
                    prof.epidemic.time(|| e.on_depart(&mut ctx, id));
                }
                for (idx, b) in stack.custom.iter_mut().enumerate() {
                    match prof.custom.get(idx) {
                        Some(c) => c.time(|| b.on_depart(&mut ctx, id)),
                        None => b.on_depart(&mut ctx, id),
                    }
                }
            }
            Event::Arrive(id) => {
                let id = *id;
                prof.discovery.time(|| stack.discovery.on_arrive(&mut ctx, id));
                prof.announce.time(|| stack.announce.on_arrive(&mut ctx, id));
                prof.recovery.time(|| stack.recovery.on_arrive(&mut ctx, id));
                prof.scheduling.time(|| stack.scheduling.on_arrive(&mut ctx, id));
                if let Some(e) = stack.epidemic.as_mut() {
                    prof.epidemic.time(|| e.on_arrive(&mut ctx, id));
                }
                for (idx, b) in stack.custom.iter_mut().enumerate() {
                    match prof.custom.get(idx) {
                        Some(c) => c.time(|| b.on_arrive(&mut ctx, id)),
                        None => b.on_arrive(&mut ctx, id),
                    }
                }
            }
        }
    }
    prof.drain.time(|| drain(core, stack, sched, actions, seq, outbox, now, lane));
    // The dispatcher owns the protocol clock: one tick reschedules the
    // next, inserted after the drained actions (the monolithic handler
    // pushed the chunk serves first, then the tick).
    if let Event::Tick(i) = ev {
        let oseq = seq.next(lane);
        sched.push_keyed(now + core.cfg.profile.tick_us, lane, oseq, Event::Tick(i));
    }
}

/// Receiver-side preamble of a chunk request arriving at a *probe*
/// provider: the provider's inbound link fate and the RX capture of the
/// request packet (the sender already ran its half in `signal_tx`).
/// Returns `true` when the serve must NOT proceed now — the request was
/// dropped, or it was delayed and re-scheduled as a deferred serve.
fn serve_preamble(
    ctx: &mut Ctx<'_, '_>,
    provider: PeerId,
    to: PeerId,
    chunk: crate::chunk::ChunkId,
) -> bool {
    let now = ctx.now();
    let core = &mut *ctx.core;
    let Some(pi) = core.probe_index(provider) else {
        return false; // external/source providers have no modelled inbound link
    };
    match core.link_fate(pi, now.as_us()) {
        PacketFate::Dropped => true, // request eaten at the provider's access link
        PacketFate::Pass { extra_delay_us } => {
            let at = now + extra_delay_us;
            let size = crate::message::Signal::ChunkRequest(chunk).wire_size();
            let ttl = core.ttl_to(to, provider);
            core.capture(pi, at, to, provider, size, ttl, PayloadKind::Signaling);
            if extra_delay_us == 0 {
                false
            } else {
                // Fault-delayed: the provider sees the request late.
                ctx.schedule(
                    at,
                    Event::Serve {
                        provider,
                        to,
                        chunk,
                        deferred: true,
                    },
                );
                true
            }
        }
    }
}

/// Drain wrapper for the early-out serve path (profiled like the normal
/// tail drain).
#[allow(clippy::too_many_arguments)]
fn return_drain(
    core: &mut SwarmCore<'_>,
    stack: &mut BehaviourStack,
    sched: &mut Scheduler<Event>,
    actions: &mut Actions,
    seq: &mut LaneSeqs,
    outbox: &mut Outbox<ShardMsg>,
    now: SimTime,
    lane: u32,
    prof: &DispatchProf,
) {
    prof.drain.time(|| drain(core, stack, sched, actions, seq, outbox, now, lane));
}

/// Drains the action queue FIFO. `Schedule` actions become keyed
/// scheduler insertions in emission order — local, or routed to the
/// owning shard's outbox; `Discover` actions re-enter the discovery
/// behaviour (which may emit further actions — the loop runs until the
/// queue is dry).
#[allow(clippy::too_many_arguments)]
fn drain(
    core: &mut SwarmCore<'_>,
    stack: &mut BehaviourStack,
    sched: &mut Scheduler<Event>,
    actions: &mut Actions,
    seq: &mut LaneSeqs,
    outbox: &mut Outbox<ShardMsg>,
    now: SimTime,
    lane: u32,
) {
    while let Some(action) = actions.queue.pop_front() {
        match action {
            BehaviourAction::Schedule { at, ev } => {
                let oseq = seq.next(lane);
                match route_of(core, handler_lane(core, &ev)) {
                    Route::Local => sched.push_keyed(at, lane, oseq, ev),
                    Route::Remote(dest) => outbox.send(dest, at.as_us(), (lane, oseq, ev)),
                }
            }
            BehaviourAction::Discover { probe } => {
                // Dead-peer replacement during broadcast handling: tag
                // the probe's own lane so its handshake events merge
                // deterministically.
                core.tag_probe_sub(probe, now);
                let mut ctx = Ctx {
                    core: &mut *core,
                    actions: &mut *actions,
                    now,
                };
                stack.discovery.try_discover(&mut ctx, probe, now.as_us());
            }
        }
    }
}

//! Fault runtime: link impairments and peer churn inside the event loop.
//!
//! [`FaultRuntime`] is built by [`Swarm::set_faults`] from a
//! [`netaware_faults::FaultPlan`] and consulted from the transfer and
//! handler paths. Everything here rides dedicated RNG streams
//! (`"fault.link"` sub-stream per probe, `"fault.churn"` for the
//! departure/arrival process), so enabling faults never shifts a
//! protocol stream, and a no-op plan builds no runtime at all — the
//! structural guarantee behind "fault-disabled runs are byte-identical
//! to pre-fault baselines".
//!
//! ## Fidelity boundary
//!
//! Link faults apply to the *probe* access links (both directions): the
//! probes are where tcpdump ran, so theirs are the only links whose
//! impairments shape observable packet timing. TX records are still
//! captured for packets that are later dropped — the capture point sits
//! on the host, before its access link — while RX records materialise
//! only for packets that survive. Churn applies to the *external*
//! population only: probes are persistent vantage points and the source
//! never leaves.

use super::state::Event;
use super::Swarm;
use crate::chunk::ChunkId;
use crate::peer::{PeerId, PeerRole};
use netaware_faults::{ChurnPlan, FaultPlan};
use netaware_obs::Level;
use netaware_sim::{DetRng, LinkFaults, PacketFate, Scheduler, SimTime};
use std::collections::BTreeSet;

/// Churn process state: who is gone, and the stream that decides for
/// how long.
pub(crate) struct ChurnRuntime {
    /// The configured arrival/departure process.
    pub(crate) plan: ChurnPlan,
    /// Dedicated churn decision stream.
    pub(crate) rng: DetRng,
    /// Externals currently offline.
    pub(crate) offline: BTreeSet<PeerId>,
}

impl ChurnRuntime {
    /// Draws an online session length, µs (exponential, ≥ 1).
    fn session_us(&mut self) -> u64 {
        (self.rng.exp(self.plan.session_mean_us as f64) as u64).max(1)
    }

    /// Draws an offline period length, µs (exponential, ≥ 1).
    fn offline_us(&mut self) -> u64 {
        (self.rng.exp(self.plan.offline_mean_us as f64) as u64).max(1)
    }
}

/// Compiled fault state attached to a running swarm.
pub(crate) struct FaultRuntime {
    /// One impairment machine per probe access link (empty when the
    /// link plan is a no-op, so churn-only plans draw no link fates).
    pub(crate) links: Vec<LinkFaults>,
    /// Churn process, when the plan enables it.
    pub(crate) churn: Option<ChurnRuntime>,
}

impl FaultRuntime {
    /// Compiles `plan` for a swarm with `n_probes` probes. Returns
    /// `None` for a no-op plan: no runtime, no draws, no divergence.
    pub(crate) fn new(plan: &FaultPlan, seed: u64, n_probes: usize) -> Option<Self> {
        if plan.is_noop() {
            return None;
        }
        let links = if plan.link.is_noop() {
            Vec::new()
        } else {
            (0..n_probes)
                .map(|i| {
                    LinkFaults::new(
                        plan.link.params(),
                        DetRng::substream(seed, "fault.link", i as u64),
                    )
                })
                .collect()
        };
        let churn = plan.churn.clone().map(|plan| ChurnRuntime {
            plan,
            rng: DetRng::stream(seed, "fault.churn"),
            offline: BTreeSet::new(),
        });
        Some(FaultRuntime { links, churn })
    }
}

impl Swarm<'_> {
    /// Fate of one packet crossing probe `idx`'s access link at `at_us`.
    /// Without link faults every packet passes undelayed, and no RNG is
    /// consulted.
    pub(crate) fn link_fate(&mut self, idx: usize, at_us: u64) -> PacketFate {
        let Some(f) = &mut self.faults else {
            return PacketFate::Pass { extra_delay_us: 0 };
        };
        if f.links.is_empty() {
            return PacketFate::Pass { extra_delay_us: 0 };
        }
        let fate = f.links[idx].packet_fate(at_us);
        if fate.is_dropped() {
            self.report.packets_dropped += 1;
            self.m.packets_dropped.inc();
        }
        fate
    }

    /// Whether `id` is currently offline (churned away).
    pub(crate) fn is_offline(&self, id: PeerId) -> bool {
        self.faults
            .as_ref()
            .and_then(|f| f.churn.as_ref())
            .is_some_and(|c| c.offline.contains(&id))
    }

    /// Whether a configured tracker outage covers `now_us` (discovery
    /// is then impossible: departed neighbors cannot be replaced).
    pub(crate) fn tracker_down(&self, now_us: u64) -> bool {
        self.faults
            .as_ref()
            .and_then(|f| f.churn.as_ref())
            .is_some_and(|c| c.plan.tracker_down(now_us))
    }

    /// Seeds the churn process at the start of the event loop: every
    /// external either starts offline (evicted from the bootstrap
    /// neighbor tables, arriving later) or gets a departure scheduled
    /// at the end of its first session.
    pub(crate) fn init_churn(&mut self, sched: &mut Scheduler<Event>) {
        let Some(churn) = self.faults.as_mut().and_then(|f| f.churn.as_mut()) else {
            return;
        };
        let ids: Vec<PeerId> = self.discovery.ext_ids.clone();
        let mut start_offline = Vec::new();
        for id in ids {
            let begins_offline =
                churn.plan.initial_offline > 0.0 && churn.rng.chance(churn.plan.initial_offline);
            if begins_offline {
                let back_at = churn.offline_us();
                churn.offline.insert(id);
                sched.push(SimTime::from_us(back_at), Event::Arrive(id));
                start_offline.push(id);
            } else {
                let gone_at = churn.session_us();
                sched.push(SimTime::from_us(gone_at), Event::Depart(id));
            }
        }
        // Initially-offline externals may have been handed out by the
        // tracker bootstrap before the plan was attached: evict them.
        for id in start_offline {
            self.evict_peer(id, SimTime::ZERO);
        }
    }

    /// An external's session ends: it vanishes mid-whatever-it-was-doing.
    pub(crate) fn on_depart(&mut self, sched: &mut Scheduler<Event>, now: SimTime, id: PeerId) {
        debug_assert_eq!(self.peers[id.0 as usize].role, PeerRole::External);
        let back_at = {
            let Some(churn) = self.faults.as_mut().and_then(|f| f.churn.as_mut()) else {
                return;
            };
            if !churn.offline.insert(id) {
                return; // already gone (stale event)
            }
            now + churn.offline_us()
        };
        sched.push(back_at, Event::Arrive(id));
        self.report.peers_departed += 1;
        self.m.peers_departed.inc();
        netaware_obs::event!(
            self.obs,
            Level::Debug,
            "swarm.peer_departed",
            now,
            "peer" = id.0,
        );
        let touched = self.evict_peer(id, now);
        // Dead-peer replacement: each probe that lost this neighbor
        // immediately asks the gossip/tracker view for a substitute
        // (which fails during tracker outages — then the next tick's
        // discovery top-up retries).
        for i in touched {
            super::handlers::try_discover_neighbor(self, i, now.as_us());
        }
    }

    /// A departed external rejoins the overlay and becomes discoverable
    /// again; its next departure is scheduled.
    pub(crate) fn on_arrive(&mut self, sched: &mut Scheduler<Event>, now: SimTime, id: PeerId) {
        let Some(churn) = self.faults.as_mut().and_then(|f| f.churn.as_mut()) else {
            return;
        };
        if !churn.offline.remove(&id) {
            return; // was never marked offline (stale event)
        }
        let gone_at = now + churn.session_us();
        sched.push(gone_at, Event::Depart(id));
        self.report.peers_arrived += 1;
        self.m.peers_arrived.inc();
        netaware_obs::event!(
            self.obs,
            Level::Debug,
            "swarm.peer_arrived",
            now,
            "peer" = id.0,
        );
    }

    /// Scrubs a departed peer from every probe's protocol state and
    /// re-queues the chunk requests that were pending on it (the
    /// mid-transfer-crash recovery path). Returns the probes that lost
    /// a neighbor entry.
    pub(crate) fn evict_peer(&mut self, id: PeerId, now: SimTime) -> Vec<usize> {
        self.ext_dyn.remove(&id);
        let mut touched = Vec::new();
        let mut requeued_total = 0u64;
        for (i, s) in self.probe_states.iter_mut().enumerate() {
            let had = s.neighbors.len();
            s.neighbors.retain(|n| n.id != id);
            if s.neighbors.len() != had {
                touched.push(i);
            }
            s.active_requesters.retain(|r| *r != id);
            s.last_rx_from.remove(&id);
            if s.last_provider == Some(id) {
                s.last_provider = None;
            }
            // Requests in flight to the departed peer will never be
            // answered: move them to the prompt re-request queue instead
            // of letting them ride out the full request timeout.
            let mut requeued: Vec<ChunkId> = Vec::new();
            s.pending.retain(|p| {
                if p.provider == id {
                    requeued.push(p.chunk);
                    false
                } else {
                    true
                }
            });
            requeued_total += requeued.len() as u64;
            for c in requeued {
                if !s.requeue.contains(&c) {
                    s.requeue.push(c);
                }
            }
        }
        if requeued_total > 0 {
            self.report.requests_requeued += requeued_total;
            self.m.requests_requeued.add(requeued_total);
            netaware_obs::event!(
                self.obs,
                Level::Debug,
                "swarm.requests_requeued",
                now,
                "peer" = id.0,
                "requests" = requeued_total,
            );
        }
        touched
    }
}

//! Full chunk-level mesh simulation — the validation substrate for the
//! statistical external-peer model.
//!
//! The main [`swarm`](crate::swarm) simulation treats external peers
//! statistically: their content availability is a fixed playout lag
//! (0.5–5 s behind the source) rather than the outcome of actual chunk
//! exchange. That substitution is what makes a 181k-peer overlay
//! tractable, but it is an *assumption* about how mesh-pull swarms
//! behave. This module checks it from first principles: a complete
//! chunk-granularity simulation where **every** peer runs the pull
//! protocol — source injection, buffer maps, randomised requests,
//! capacity-bounded upload slots — and the acquisition lag of every
//! chunk at every peer is measured.
//!
//! If the substitution is sound, the lag distribution that *emerges*
//! here must match the one the swarm *assumes* (mass concentrated in
//! the 1–10 chunk band, i.e. 0.5–5 s at the CCTV-1 chunk rate), and
//! high-upload peers must sit at the early edge of it. The
//! `mesh_validation` example and `tests/` assert exactly that.

use crate::chunk::{BufferMap, ChunkId, StreamParams};
use netaware_sim::{DetRng, Histogram};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Configuration of a full-mesh run.
#[derive(Clone, Debug)]
pub struct MeshConfig {
    /// Overlay size (every peer fully simulated).
    pub n_peers: usize,
    /// Seed.
    pub seed: u64,
    /// Duration, µs.
    pub duration_us: u64,
    /// Stream parameters.
    pub stream: StreamParams,
    /// Neighbors per peer (random regular-ish graph).
    pub degree: usize,
    /// Missing chunks a peer may request per tick.
    pub requests_per_tick: usize,
    /// Tick period, µs.
    pub tick_us: u64,
    /// Upload slots per tick for a low-bandwidth peer (a capacity
    /// proxy: one slot = one chunk served per tick).
    pub low_upload_slots: usize,
    /// Upload slots per tick for a high-bandwidth peer.
    pub high_upload_slots: usize,
    /// Fraction of high-bandwidth peers.
    pub high_bw_fraction: f64,
    /// Peers the source pushes each fresh chunk to.
    pub source_fanout: usize,
    /// Playout window: chunks older than this behind the head are
    /// abandoned.
    pub window_chunks: u32,
    /// Ticks a chunk transfer takes from a high-bandwidth provider.
    pub high_transfer_ticks: u32,
    /// Ticks a chunk transfer takes from a low-bandwidth provider
    /// (a 25 kB chunk over a ~0.5 Mb/s uplink is ~0.4–0.5 s).
    pub low_transfer_ticks: u32,
}

impl MeshConfig {
    /// A CCTV-1-like default at the given overlay size.
    pub fn cctv1(n_peers: usize, seed: u64, duration_us: u64) -> Self {
        MeshConfig {
            n_peers,
            seed,
            duration_us,
            stream: StreamParams::cctv1(),
            degree: 12,
            requests_per_tick: 4,
            tick_us: 250_000,
            low_upload_slots: 1,
            high_upload_slots: 8,
            high_bw_fraction: 0.36,
            source_fanout: 4,
            window_chunks: 24,
            high_transfer_ticks: 1,
            low_transfer_ticks: 3,
        }
    }
}

/// What the full mesh measured.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct MeshReport {
    /// Chunk acquisitions.
    pub delivered: u64,
    /// Chunks abandoned past the window.
    pub lost: u64,
    /// Acquisition-lag histogram in chunk units (lag = how many chunk
    /// intervals after generation a peer obtained a chunk).
    pub lag_counts: Vec<u64>,
    /// Mean acquisition lag, chunks.
    pub mean_lag_chunks: f64,
    /// Median acquisition lag, chunks.
    pub median_lag_chunks: u32,
    /// 95th-percentile lag, chunks.
    pub p95_lag_chunks: u32,
    /// Mean lag of high-bandwidth peers.
    pub mean_lag_high: f64,
    /// Mean lag of low-bandwidth peers.
    pub mean_lag_low: f64,
}

impl MeshReport {
    /// Delivered / (delivered + lost).
    pub fn continuity(&self) -> f64 {
        let total = self.delivered + self.lost;
        if total == 0 {
            return 1.0;
        }
        self.delivered as f64 / total as f64
    }

    /// Share of acquisitions with lag in `[lo, hi]` chunks.
    pub fn lag_mass_in(&self, lo: usize, hi: usize) -> f64 {
        let total: u64 = self.lag_counts.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let inside: u64 = self
            .lag_counts
            .iter()
            .enumerate()
            .filter(|(i, _)| *i >= lo && *i <= hi)
            .map(|(_, &c)| c)
            .sum();
        inside as f64 / total as f64
    }
}

struct MeshPeer {
    bufmap: BufferMap,
    neighbors: Vec<u32>,
    high: bool,
    slots_left: usize,
}

/// Runs the full mesh synchronously (tick-stepped; chunk granularity).
pub fn run_mesh(cfg: &MeshConfig) -> MeshReport {
    assert!(cfg.n_peers >= 2, "a mesh needs at least two peers");
    let mut rng = DetRng::stream(cfg.seed, "mesh");

    // Build peers and a random graph (undirected union of per-peer picks).
    let mut peers: Vec<MeshPeer> = (0..cfg.n_peers)
        .map(|_| MeshPeer {
            bufmap: BufferMap::new(),
            neighbors: Vec::new(),
            high: rng.chance(cfg.high_bw_fraction),
            slots_left: 0,
        })
        .collect();
    for i in 0..cfg.n_peers {
        while peers[i].neighbors.len() < cfg.degree.min(cfg.n_peers - 1) {
            let j = rng.range(0..cfg.n_peers);
            if j != i && !peers[i].neighbors.contains(&(j as u32)) {
                peers[i].neighbors.push(j as u32);
                if !peers[j].neighbors.contains(&(i as u32)) {
                    peers[j].neighbors.push(i as u32);
                }
            }
        }
    }

    let interval = cfg.stream.chunk_interval_us();
    let mut lag_hist = Histogram::new(64);
    let mut lost = 0u64;
    let mut lag_sum_high = 0f64;
    let mut n_high = 0u64;
    let mut lag_sum_low = 0f64;
    let mut n_low = 0u64;

    let mut now = 0u64;
    let mut last_head: Option<ChunkId> = None;
    let mut transfers: Vec<(u64, usize, ChunkId)> = Vec::new();
    let mut in_flight: BTreeSet<(u32, u32)> = BTreeSet::new();
    while now <= cfg.duration_us {
        // Source injection: each newly generated chunk seeds a few peers.
        let head = cfg.stream.head_at(now);
        if head != last_head {
            if let Some(h) = head {
                let first = last_head.map_or(h.0, |p| p.0 + 1);
                for c in first..=h.0 {
                    for _ in 0..cfg.source_fanout {
                        let k = rng.range(0..cfg.n_peers);
                        peers[k].bufmap.insert(ChunkId(c));
                        lag_hist.push(0);
                        if peers[k].high {
                            n_high += 1;
                        } else {
                            n_low += 1;
                        }
                    }
                }
            }
            last_head = head;
        }
        let Some(head) = head else {
            now += cfg.tick_us;
            continue;
        };

        // Refill upload slots.
        for p in peers.iter_mut() {
            p.slots_left = if p.high {
                cfg.high_upload_slots
            } else {
                cfg.low_upload_slots
            };
        }

        // Each peer pulls missing chunks from neighbors that hold them
        // and still have slots. Pulls are *asynchronous-realistic*:
        // availability is the state at tick start, and an acquisition
        // materialises only after the provider-class transfer time —
        // chunks cross one overlay hop per transfer, taking longer
        // through low-bandwidth uplinks. (Without this, a chunk could
        // cascade across the whole mesh inside one tick and every lag
        // would read zero.)
        let mut order: Vec<usize> = (0..cfg.n_peers).collect();
        rng.shuffle(&mut order);
        let window_start = ChunkId(head.0.saturating_sub(cfg.window_chunks));
        for &i in &order {
            // Abandon chunks that slid out of the window.
            let base = peers[i].bufmap.base();
            if window_start.0 > base.0 {
                lost += peers[i]
                    .bufmap
                    .missing_in(base, ChunkId(window_start.0 - 1))
                    .count() as u64;
                peers[i].bufmap.advance_base(window_start);
            }
            let missing: Vec<ChunkId> = peers[i]
                .bufmap
                .missing_in(window_start, head)
                .filter(|c| !in_flight.contains(&(i as u32, c.0)))
                .take(cfg.requests_per_tick)
                .collect();
            for c in missing {
                // Providers: neighbors holding c with a free slot.
                let holders: Vec<u32> = peers[i]
                    .neighbors
                    .iter()
                    .copied()
                    .filter(|&j| {
                        peers[j as usize].slots_left > 0 && peers[j as usize].bufmap.contains(c)
                    })
                    .collect();
                if holders.is_empty() {
                    continue;
                }
                let provider = *rng.pick(&holders) as usize;
                peers[provider].slots_left -= 1;
                let ticks = if peers[provider].high {
                    cfg.high_transfer_ticks
                } else {
                    cfg.low_transfer_ticks
                };
                in_flight.insert((i as u32, c.0));
                transfers.push((now + ticks as u64 * cfg.tick_us, i, c));
            }
        }

        // Materialise transfers that completed by this tick.
        let mut k = 0;
        while k < transfers.len() {
            let (due, i, c) = transfers[k];
            if due > now {
                k += 1;
                continue;
            }
            transfers.swap_remove(k);
            in_flight.remove(&(i as u32, c.0));
            if peers[i].bufmap.contains(c) || c.0 < peers[i].bufmap.base().0 {
                continue; // arrived late or duplicated; nothing to record
            }
            peers[i].bufmap.insert(c);
            let lag = (due.saturating_sub(cfg.stream.chunk_time_us(c)) / interval) as usize;
            lag_hist.push(lag);
            if peers[i].high {
                lag_sum_high += lag as f64;
                n_high += 1;
            } else {
                lag_sum_low += lag as f64;
                n_low += 1;
            }
        }
        now += cfg.tick_us;
    }

    let delivered = lag_hist.total();
    let total_lag: f64 = lag_sum_high + lag_sum_low;
    MeshReport {
        delivered,
        lost,
        lag_counts: (0..64).map(|i| lag_hist.count(i)).collect(),
        mean_lag_chunks: if delivered == 0 {
            0.0
        } else {
            total_lag / delivered as f64
        },
        median_lag_chunks: lag_hist.quantile(0.5).unwrap_or(0) as u32,
        p95_lag_chunks: lag_hist.quantile(0.95).unwrap_or(0) as u32,
        mean_lag_high: if n_high == 0 { 0.0 } else { lag_sum_high / n_high as f64 },
        mean_lag_low: if n_low == 0 { 0.0 } else { lag_sum_low / n_low as f64 },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg(seed: u64) -> MeshConfig {
        MeshConfig::cctv1(300, seed, 120_000_000)
    }

    #[test]
    fn mesh_sustains_the_stream() {
        let r = run_mesh(&quick_cfg(1));
        assert!(r.continuity() > 0.95, "continuity {:.3}", r.continuity());
        assert!(r.delivered > 10_000);
    }

    #[test]
    fn emergent_lag_matches_the_swarm_assumption() {
        // The swarm's external model assumes lags of 0.5–5 s ≈ 1–10
        // chunk intervals; the bulk of the emergent distribution must
        // fall in that band.
        let r = run_mesh(&quick_cfg(2));
        let mass = r.lag_mass_in(1, 10);
        assert!(mass > 0.6, "lag mass in 1–10 chunks: {mass:.2}");
        assert!(
            (1..=10).contains(&r.median_lag_chunks),
            "median lag {} chunks",
            r.median_lag_chunks
        );
        assert!(r.p95_lag_chunks <= 24, "p95 lag {}", r.p95_lag_chunks);
    }

    #[test]
    fn mesh_is_deterministic() {
        let a = run_mesh(&quick_cfg(7));
        let b = run_mesh(&quick_cfg(7));
        assert_eq!(a.delivered, b.delivered);
        assert_eq!(a.lag_counts, b.lag_counts);
        let c = run_mesh(&quick_cfg(8));
        assert_ne!(a.lag_counts, c.lag_counts);
    }

    #[test]
    fn capacity_shapes_the_swarm() {
        // Starving the overlay — no high-capacity peers, a sparse graph,
        // a single seed copy per chunk, and a tight playout window — must
        // hurt continuity.
        let mut poor = quick_cfg(3);
        poor.high_bw_fraction = 0.0;
        poor.low_upload_slots = 1;
        poor.degree = 2;
        poor.source_fanout = 1;
        poor.window_chunks = 6;
        let rich = run_mesh(&quick_cfg(3));
        let starved = run_mesh(&poor);
        assert!(
            starved.continuity() < rich.continuity(),
            "rich {:.3} vs starved {:.3}",
            rich.continuity(),
            starved.continuity()
        );
    }

    #[test]
    fn tiny_mesh_runs() {
        let mut cfg = MeshConfig::cctv1(2, 1, 10_000_000);
        cfg.degree = 1;
        let r = run_mesh(&cfg);
        assert!(r.delivered > 0);
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn single_peer_rejected() {
        let _ = run_mesh(&MeshConfig::cctv1(1, 1, 1_000_000));
    }
}

//! Peer-selection policies.
//!
//! This is the knob the whole reproduction turns on: each application
//! profile carries a [`SelectionPolicy`] describing how a peer weighs
//! candidate providers, and the analysis framework — which never sees
//! these weights — must recover the resulting biases from traffic alone.
//!
//! A candidate's weight is a product of independent factors:
//!
//! * a **bandwidth term** `(est_up / 1 Mb/s)^bw_exponent` from the
//!   peer's running estimate of the provider's upstream (estimated from
//!   observed chunk delivery speed; before any exchange a responsiveness
//!   prior from the handshake RTT stands in);
//! * a **same-AS boost** and a **same-country boost** — the locality
//!   preferences the paper hunts for;
//! * a **stickiness** multiplier favouring the provider that served the
//!   peer last (provider rotation differs sharply between PPLive-like
//!   and TVAnts-like systems and shapes contributor counts).
//!
//! Setting every exponent/boost to neutral yields the uniform-random
//! policy used by the ablation experiments.

use serde::{Deserialize, Serialize};

/// Weights steering provider choice.
///
/// ```
/// use netaware_proto::{SelectionPolicy, Candidate};
///
/// let policy = SelectionPolicy {
///     bw_exponent: 1.0,
///     same_as_boost: 4.0,
///     ..SelectionPolicy::uniform()
/// };
/// let fast_far = Candidate { est_up_bps: Some(100_000_000), ..Default::default() };
/// let slow_near = Candidate { est_up_bps: Some(4_000_000), same_as: true, ..Default::default() };
/// // 100 Mb/s beats a same-AS 4 Mb/s peer under this mix (100 > 4·4):
/// assert!(policy.weight(&fast_far) > policy.weight(&slow_near));
/// ```
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct SelectionPolicy {
    /// Exponent on the estimated upstream bandwidth (0 = BW-blind).
    pub bw_exponent: f64,
    /// Multiplicative weight for same-AS candidates (1 = no preference).
    pub same_as_boost: f64,
    /// Multiplicative weight for same-subnet (LAN) candidates; applied
    /// instead of the AS boost when larger. PPLive's measured behaviour
    /// needs a subnet affinity well beyond its AS affinity.
    pub subnet_boost: f64,
    /// Multiplicative weight for same-country candidates (1 = none).
    pub same_cc_boost: f64,
    /// Multiplicative weight for the most recent provider (1 = none);
    /// high values mean few, stable contributors.
    pub stickiness: f64,
    /// Prior upstream estimate (b/s) for candidates never exchanged with.
    pub unknown_bw_prior_bps: u64,
}

impl SelectionPolicy {
    /// Uniform-random selection: every candidate weighs 1.
    pub const fn uniform() -> Self {
        SelectionPolicy {
            bw_exponent: 0.0,
            same_as_boost: 1.0,
            subnet_boost: 1.0,
            same_cc_boost: 1.0,
            stickiness: 1.0,
            unknown_bw_prior_bps: 4_000_000,
        }
    }

    /// Weight of one candidate given its observable context.
    pub fn weight(&self, c: &Candidate) -> f64 {
        let bw = c.est_up_bps.unwrap_or(self.unknown_bw_prior_bps) as f64 / 1e6;
        let mut w = bw.max(0.01).powf(self.bw_exponent);
        if c.same_subnet {
            w *= self.subnet_boost.max(self.same_as_boost);
        } else if c.same_as {
            w *= self.same_as_boost;
        } else if c.same_cc {
            // Country boost applies to same-country peers in *other*
            // ASes; same-AS peers already got the (stronger) AS boost.
            w *= self.same_cc_boost;
        }
        if c.is_last_provider {
            w *= self.stickiness;
        }
        w
    }
}

/// What a peer can observe about a candidate provider at selection time.
#[derive(Clone, Copy, Debug, Default)]
pub struct Candidate {
    /// Running upstream estimate from past exchanges, if any.
    pub est_up_bps: Option<u64>,
    /// Candidate shares the selecting peer's subnet (LAN).
    pub same_subnet: bool,
    /// Candidate resolves to the selecting peer's AS.
    pub same_as: bool,
    /// Candidate resolves to the selecting peer's country.
    pub same_cc: bool,
    /// Candidate served this peer's previous request.
    pub is_last_provider: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_weighs_everything_equally() {
        let p = SelectionPolicy::uniform();
        let fast = Candidate {
            est_up_bps: Some(100_000_000),
            ..Default::default()
        };
        let slow = Candidate {
            est_up_bps: Some(400_000),
            ..Default::default()
        };
        let local = Candidate {
            same_as: true,
            same_cc: true,
            ..Default::default()
        };
        assert_eq!(p.weight(&fast), 1.0);
        assert_eq!(p.weight(&slow), 1.0);
        assert_eq!(p.weight(&local), 1.0);
    }

    #[test]
    fn bw_exponent_orders_candidates() {
        let p = SelectionPolicy {
            bw_exponent: 0.5,
            ..SelectionPolicy::uniform()
        };
        let fast = Candidate {
            est_up_bps: Some(100_000_000),
            ..Default::default()
        };
        let slow = Candidate {
            est_up_bps: Some(512_000),
            ..Default::default()
        };
        let ratio = p.weight(&fast) / p.weight(&slow);
        // sqrt(100/0.512) ≈ 14
        assert!((13.0..15.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn unknown_bw_uses_prior() {
        let p = SelectionPolicy {
            bw_exponent: 1.0,
            ..SelectionPolicy::uniform()
        };
        let unknown = Candidate::default();
        assert!((p.weight(&unknown) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn as_boost_dominates_cc_boost() {
        let p = SelectionPolicy {
            same_as_boost: 8.0,
            same_cc_boost: 2.0,
            ..SelectionPolicy::uniform()
        };
        let same_as = Candidate {
            same_as: true,
            same_cc: true,
            ..Default::default()
        };
        let same_cc_only = Candidate {
            same_cc: true,
            ..Default::default()
        };
        assert_eq!(p.weight(&same_as), 8.0); // not 16: boosts don't stack
        assert_eq!(p.weight(&same_cc_only), 2.0);
    }

    #[test]
    fn stickiness_multiplies() {
        let p = SelectionPolicy {
            stickiness: 5.0,
            ..SelectionPolicy::uniform()
        };
        let sticky = Candidate {
            is_last_provider: true,
            ..Default::default()
        };
        assert_eq!(p.weight(&sticky), 5.0);
    }

    #[test]
    fn tiny_bandwidth_clamped_positive() {
        let p = SelectionPolicy {
            bw_exponent: 2.0,
            ..SelectionPolicy::uniform()
        };
        let dead = Candidate {
            est_up_bps: Some(0),
            ..Default::default()
        };
        assert!(p.weight(&dead) > 0.0);
    }
}

//! Protocol messages and their wire sizes.
//!
//! The analysis never parses message payloads (the real protocols were
//! proprietary and encrypted); what matters is the *packet size* each
//! message type puts on the wire, because the paper's contributor
//! heuristic separates video from signalling by size. The sizes used here
//! match the signalling profiles reported for 2008-era P2P-TV systems:
//! small keep-alives and requests, a few hundred bytes for peer lists and
//! buffer maps, and ~full-MTU packets only for video.

use crate::chunk::ChunkId;
use serde::{Deserialize, Serialize};

/// Signalling message kinds.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum Signal {
    /// First contact / session handshake.
    Hello,
    /// Ask a peer for (part of) its neighbor list.
    PeerListRequest,
    /// Neighbor-list reply carrying `n` entries.
    PeerListReply(u8),
    /// Buffer-map advertisement.
    BufferMap,
    /// Request for one chunk.
    ChunkRequest(ChunkId),
    /// Liveness probe.
    KeepAlive,
}

impl Signal {
    /// IP datagram size for this message (IP+UDP headers included).
    pub const fn wire_size(self) -> u16 {
        match self {
            Signal::Hello => 92,
            Signal::PeerListRequest => 68,
            Signal::PeerListReply(n) => 76 + 6 * n as u16,
            Signal::BufferMap => 148,
            Signal::ChunkRequest(_) => 72,
            Signal::KeepAlive => 56,
        }
    }
}

/// The largest signalling datagram the protocol can emit. The analysis'
/// video/signalling size threshold must sit above this and below the
/// smallest video packet.
pub const MAX_SIGNAL_SIZE: u16 = 76 + 6 * 255;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_are_stable() {
        assert_eq!(Signal::Hello.wire_size(), 92);
        assert_eq!(Signal::KeepAlive.wire_size(), 56);
        assert_eq!(Signal::PeerListReply(0).wire_size(), 76);
        assert_eq!(Signal::PeerListReply(10).wire_size(), 136);
        assert_eq!(Signal::ChunkRequest(ChunkId(5)).wire_size(), 72);
    }

    #[test]
    fn max_signal_bound_holds() {
        for s in [
            Signal::Hello,
            Signal::PeerListRequest,
            Signal::PeerListReply(255),
            Signal::BufferMap,
            Signal::ChunkRequest(ChunkId(0)),
            Signal::KeepAlive,
        ] {
            assert!(s.wire_size() <= MAX_SIGNAL_SIZE);
        }
    }

    #[test]
    fn all_signalling_below_video_packets() {
        // Video packets are ~1250 B; every signal must stay well below so
        // the size heuristic can separate them. PeerListReply is capped in
        // practice at ~40 entries by the profiles.
        assert!(Signal::PeerListReply(40).wire_size() < 400);
        assert!(Signal::BufferMap.wire_size() < 400);
    }
}

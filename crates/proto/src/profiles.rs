//! Application behaviour profiles.
//!
//! PPLive, SopCast and TVAnts were proprietary and closed; what the paper
//! (and the companion NAPA-WINE technical report) established about them
//! empirically is encoded here as parameter sets over one common
//! mesh-pull protocol engine:
//!
//! * **PPLive-like** — enormous contacted-peer population (aggressive
//!   gossip/"halo" probing), heavy signalling overhead, wide provider
//!   rotation, very aggressive exploitation of high-bandwidth peers as
//!   upload amplifiers (mean probe TX ≈ 9× the stream rate), moderate
//!   same-AS byte preference;
//! * **SopCast-like** — mid-sized overlay, bandwidth-driven but
//!   location-blind selection, modest upload contribution;
//! * **TVAnts-like** — small, stable overlay, strong same-AS (and
//!   residual same-country) preference on both download and upload,
//!   sticky providers, upload ≈ download.
//!
//! These numbers are *calibration targets*, not measurements of the
//! originals: they are tuned until the passive analysis framework applied
//! to the simulated traces reproduces the shape of Tables II–IV and
//! Figs. 1–2 of the paper. The `uniform_selection` variant strips all
//! network awareness and is the control arm of the ablation experiments.

use crate::policy::SelectionPolicy;
use serde::{Deserialize, Serialize};

/// Sender-driven epidemic push policy (Mathieu & Perino): when present,
/// the profile's behaviour stack includes the epidemic push built-in,
/// which pushes the latest useful buffered chunk to a neighbor every
/// tick instead of waiting to be asked.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct PushPolicy {
    /// Push attempts per protocol tick.
    pub pushes_per_tick: u32,
    /// Exponent biasing target choice toward high-upstream neighbors.
    /// `0.0` is the random-peer policy; positive values are the
    /// bandwidth-aware variant (capacity-proportional at `1.0`).
    pub bw_exponent: f64,
}

/// Complete behaviour description of one P2P-TV application.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct AppProfile {
    /// Application name as printed in tables.
    pub name: String,
    /// Provider-selection policy for the download side.
    pub download_policy: SelectionPolicy,
    /// Locality weights governing which external requesters demand upload
    /// from probes (bandwidth term unused — all requesters see the same
    /// probe).
    pub upload_policy: SelectionPolicy,
    /// Probability that a chunk request explores a never-tried neighbor
    /// instead of exploiting known providers. Sets the contributor-set
    /// width (PPLive's hundreds vs TVAnts' dozens).
    pub exploration: f64,
    /// Exponent biasing *neighbor discovery* toward high-upstream peers
    /// (gossip advertises good uploaders); the mechanism that makes
    /// 83–86 % of contributors high-bandwidth out of a much poorer
    /// population.
    pub discovery_bw_exponent: f64,
    /// Multiplier biasing discovery toward same-AS peers (TVAnts finds
    /// same-AS peers far more efficiently than the others).
    pub discovery_as_boost: f64,
    /// Protocol tick period, µs.
    pub tick_us: u64,
    /// Neighbor-table capacity.
    pub max_neighbors: usize,
    /// Neighbors handed out by the tracker at join.
    pub init_neighbors: usize,
    /// Mean external-neighbor lifetime, µs (exponential churn).
    pub neighbor_lifetime_us: u64,
    /// Expected new external neighbors acquired per tick (when below
    /// capacity).
    pub discovery_per_tick: f64,
    /// Probability that any given pair of probes end up neighbors (all
    /// probes watch the same channel; denser for small overlays).
    pub probe_mesh_prob: f64,
    /// Rate of signalling-only "halo" contacts per second — the discovery
    /// probing that makes PPLive's contacted-peer count enormous.
    pub halo_contacts_per_sec: f64,
    /// Startup playout delay, in chunks.
    pub buffer_delay_chunks: u32,
    /// Maximum in-flight chunk requests.
    pub max_parallel_requests: usize,
    /// Chunk-request timeout before re-requesting elsewhere, µs.
    pub request_timeout_us: u64,
    /// Target mean TX rate of an unconstrained (LAN) probe, as a multiple
    /// of the stream rate. PPLive ≈ 9, TVAnts ≈ 1.2, SopCast ≈ 0.8.
    pub upload_target_factor: f64,
    /// Uplink backlog (µs of queued transmission) above which a probe
    /// refuses further upload requests.
    pub upload_backlog_cap_us: u64,
    /// Probability that a demand event re-uses a recent requester rather
    /// than drafting a new one (sets upload-contributor width).
    pub demand_stickiness: f64,
    /// Buffer-map announcements per tick: (sent by probe, received from
    /// neighbors). The RX side is the main signalling overhead — PPLive's
    /// measured RX rate exceeds the stream rate by ~170 kb/s because of
    /// it.
    pub announces_per_tick: (u32, u32),
    /// Entries per peer-list reply (sets the reply packet size).
    pub peerlist_entries: u8,
    /// Full-scale external overlay size (scaled by the scenario).
    pub overlay_size: usize,
    /// Pareto shape spreading upload popularity across probes (higher =
    /// more uniform; the max/mean TX gap in Table II comes from this).
    pub popularity_spread: f64,
    /// Sender-driven epidemic push policy; `None` (all tracker-era
    /// paper profiles) keeps the stack pull-only and byte-identical to
    /// the pre-epidemic engine.
    pub push: Option<PushPolicy>,
}

impl AppProfile {
    /// The PPLive-like profile.
    pub fn pplive() -> Self {
        AppProfile {
            name: "PPLive".into(),
            download_policy: SelectionPolicy {
                bw_exponent: 1.2,
                same_as_boost: 1.3,
                subnet_boost: 4.0,
                same_cc_boost: 1.1,
                stickiness: 6.0,
                unknown_bw_prior_bps: 4_000_000,
            },
            upload_policy: SelectionPolicy {
                bw_exponent: 0.0,
                same_as_boost: 2.0,
                subnet_boost: 3.0,
                same_cc_boost: 1.2,
                stickiness: 1.0,
                unknown_bw_prior_bps: 4_000_000,
            },
            exploration: 0.055,
            discovery_bw_exponent: 0.75,
            discovery_as_boost: 1.5,
            tick_us: 200_000,
            max_neighbors: 320,
            init_neighbors: 60,
            neighbor_lifetime_us: 500_000_000, // ~8.3 min
            discovery_per_tick: 0.35,
            probe_mesh_prob: 0.55,
            halo_contacts_per_sec: 6.1,
            buffer_delay_chunks: 12,
            max_parallel_requests: 10,
            request_timeout_us: 1_800_000,
            upload_target_factor: 12.0,
            upload_backlog_cap_us: 400_000,
            demand_stickiness: 0.6,
            announces_per_tick: (6, 26),
            peerlist_entries: 30,
            overlay_size: 181_000,
            popularity_spread: 1.2,
            push: None,
        }
    }

    /// The SopCast-like profile.
    pub fn sopcast() -> Self {
        AppProfile {
            name: "SopCast".into(),
            download_policy: SelectionPolicy {
                bw_exponent: 1.1,
                same_as_boost: 1.0,
                subnet_boost: 1.0,
                same_cc_boost: 1.0,
                stickiness: 4.0,
                unknown_bw_prior_bps: 4_000_000,
            },
            upload_policy: SelectionPolicy::uniform(),
            exploration: 0.02,
            discovery_bw_exponent: 0.7,
            discovery_as_boost: 1.0,
            tick_us: 250_000,
            max_neighbors: 110,
            init_neighbors: 40,
            neighbor_lifetime_us: 1_100_000_000,
            discovery_per_tick: 0.08,
            probe_mesh_prob: 0.35,
            halo_contacts_per_sec: 0.12,
            buffer_delay_chunks: 14,
            max_parallel_requests: 8,
            request_timeout_us: 2_000_000,
            upload_target_factor: 0.72,
            upload_backlog_cap_us: 300_000,
            demand_stickiness: 0.5,
            announces_per_tick: (4, 10),
            peerlist_entries: 20,
            overlay_size: 4_000,
            popularity_spread: 0.8,
            push: None,
        }
    }

    /// The TVAnts-like profile.
    pub fn tvants() -> Self {
        AppProfile {
            name: "TVAnts".into(),
            download_policy: SelectionPolicy {
                bw_exponent: 1.1,
                same_as_boost: 3.2,
                subnet_boost: 3.2,
                same_cc_boost: 1.3,
                stickiness: 10.0,
                unknown_bw_prior_bps: 4_000_000,
            },
            upload_policy: SelectionPolicy {
                bw_exponent: 0.0,
                same_as_boost: 5.0,
                subnet_boost: 5.0,
                same_cc_boost: 1.15,
                stickiness: 1.0,
                unknown_bw_prior_bps: 4_000_000,
            },
            exploration: 0.013,
            discovery_bw_exponent: 0.7,
            discovery_as_boost: 3.0,
            tick_us: 250_000,
            max_neighbors: 55,
            init_neighbors: 30,
            neighbor_lifetime_us: 2_400_000_000,
            discovery_per_tick: 0.04,
            probe_mesh_prob: 0.7,
            halo_contacts_per_sec: 0.035,
            buffer_delay_chunks: 14,
            max_parallel_requests: 6,
            request_timeout_us: 2_000_000,
            upload_target_factor: 0.75,
            upload_backlog_cap_us: 300_000,
            demand_stickiness: 0.7,
            announces_per_tick: (3, 7),
            peerlist_entries: 16,
            overlay_size: 520,
            popularity_spread: 0.5,
            push: None,
        }
    }

    /// All three paper profiles, in the paper's presentation order.
    pub fn paper_apps() -> Vec<AppProfile> {
        vec![Self::pplive(), Self::sopcast(), Self::tvants()]
    }

    /// Every registered profile, in stable presentation order: the three
    /// paper applications first, then the extension profiles. Anything
    /// that enumerates selectable profiles (CLI lookup, sweeps, golden
    /// coverage) must route through this list so a newly registered
    /// profile cannot be silently skipped.
    pub fn all() -> Vec<AppProfile> {
        vec![
            Self::pplive(),
            Self::sopcast(),
            Self::tvants(),
            Self::pplive_unpopular(),
            Self::nextgen(),
            Self::epidemic_rp(),
            Self::epidemic_ba(),
        ]
    }

    /// Looks a registered profile up by name, case-insensitively, with
    /// the historical CLI aliases (`nextgen` for NAPA-NG,
    /// `epidemic_rp`/`epidemic_ba` underscore forms).
    pub fn by_name(name: &str) -> Option<AppProfile> {
        let want = name.to_ascii_lowercase().replace('_', "-");
        let want = match want.as_str() {
            "nextgen" => "napa-ng".to_string(),
            "pplive-unpop" | "pplive-unpopular" => "pplive-unpop".to_string(),
            other => other.to_string(),
        };
        Self::all()
            .into_iter()
            .find(|p| p.name.to_ascii_lowercase() == want)
    }

    /// PPLive tuned to a less-popular channel: the paper ran PPLive on
    /// both a popular (CCTV-1 at China peak) and a less-popular channel —
    /// Fig. 2 shows them as separate panels. A thin audience means a
    /// smaller overlay, slower discovery, fewer simultaneous requesters
    /// and a smaller amplification role for high-bandwidth peers, while
    /// the selection machinery is byte-identical to [`Self::pplive`].
    pub fn pplive_unpopular() -> Self {
        AppProfile {
            name: "PPLive-Unpop".into(),
            overlay_size: 9_000,
            halo_contacts_per_sec: 0.9,
            max_neighbors: 120,
            init_neighbors: 35,
            discovery_per_tick: 0.12,
            upload_target_factor: 3.5,
            popularity_spread: 0.9,
            ..Self::pplive()
        }
    }

    /// The system the paper's conclusion calls for: a next-generation,
    /// fully network-aware client ("future P2P-TV applications could
    /// improve the level of network-awareness, by better localizing the
    /// traffic the network has to carry").
    ///
    /// Built on the SopCast-like base (so every difference against that
    /// profile is attributable to awareness alone): aggressive same-AS /
    /// same-country preference in both discovery and selection, on top
    /// of the usual bandwidth awareness. The `nextgen` example and the
    /// `netfriend` metrics quantify how much transit traffic this saves
    /// and what it costs.
    pub fn nextgen() -> Self {
        AppProfile {
            name: "NAPA-NG".into(),
            download_policy: SelectionPolicy {
                bw_exponent: 1.0,
                same_as_boost: 20.0,
                subnet_boost: 20.0,
                same_cc_boost: 6.0,
                stickiness: 4.0,
                unknown_bw_prior_bps: 4_000_000,
            },
            upload_policy: SelectionPolicy {
                bw_exponent: 0.0,
                same_as_boost: 20.0,
                subnet_boost: 20.0,
                same_cc_boost: 6.0,
                stickiness: 1.0,
                unknown_bw_prior_bps: 4_000_000,
            },
            discovery_as_boost: 12.0,
            ..Self::sopcast()
        }
    }

    /// Epidemic diffusion, random-peer/latest-useful push (Mathieu &
    /// Perino's baseline policy): every tick each peer pushes the newest
    /// useful chunk it holds to a uniformly random neighbor. Selection
    /// is location- and bandwidth-blind everywhere — diffusion quality
    /// comes from push fan-out, not from choosing good providers — so
    /// the passive analysis should fingerprint it as network-*unaware*
    /// (near-uniform locality, no BW preference on the push side).
    pub fn epidemic_rp() -> Self {
        AppProfile {
            name: "Epidemic-RP".into(),
            download_policy: SelectionPolicy::uniform(),
            upload_policy: SelectionPolicy::uniform(),
            exploration: 0.04,
            discovery_bw_exponent: 0.0,
            discovery_as_boost: 1.0,
            push: Some(PushPolicy {
                pushes_per_tick: 1,
                bw_exponent: 0.0,
            }),
            ..Self::sopcast()
        }
    }

    /// Epidemic diffusion, bandwidth-aware push (Mathieu & Perino's
    /// resource-aware variant): same push machinery as
    /// [`Self::epidemic_rp`], but push targets are drawn proportionally
    /// to their upstream capacity (and discovery keeps a mild BW bias),
    /// concentrating diffusion through high-capacity relays. The
    /// analysis must distinguish the two: BA shows a strong BW
    /// preference where RP shows none, while both stay location-blind.
    pub fn epidemic_ba() -> Self {
        AppProfile {
            name: "Epidemic-BA".into(),
            push: Some(PushPolicy {
                pushes_per_tick: 1,
                bw_exponent: 1.0,
            }),
            discovery_bw_exponent: 0.7,
            ..Self::epidemic_rp()
        }
    }

    /// Ablation control: same traffic volumes and overlay dynamics, but
    /// *every* selection decision is uniform-random and discovery is
    /// unbiased. Applying the analysis to this variant must show no
    /// preference on any metric.
    pub fn uniform_selection(mut self) -> Self {
        self.name = format!("{}-random", self.name);
        self.download_policy = SelectionPolicy::uniform();
        self.upload_policy = SelectionPolicy::uniform();
        self.discovery_bw_exponent = 0.0;
        self.discovery_as_boost = 1.0;
        self.exploration = self.exploration.max(0.02);
        self
    }

    /// Expected steady-state distinct external neighbors over a run of
    /// `duration_us` (capacity plus churn turnover) — used by tests to
    /// sanity-check contributor-count calibration.
    pub fn expected_distinct_neighbors(&self, duration_us: u64) -> f64 {
        let turnover = duration_us as f64 / self.neighbor_lifetime_us as f64;
        self.max_neighbors as f64 * (1.0 + turnover)
    }

    /// Builds the behaviour stack this profile composes: the profile is
    /// a *behaviour-stack constructor* — each concern module reads its
    /// own parameter slice and the swarm wires them to one dispatcher.
    pub fn stack(&self) -> crate::swarm::BehaviourStack {
        crate::swarm::BehaviourStack::new(
            crate::swarm::discovery::Discovery::from_profile(self),
            crate::swarm::announce::Announce::from_profile(self),
            crate::swarm::churn_recovery::ChurnRecovery::default(),
            crate::swarm::scheduling::Scheduling::from_profile(self),
            self.push.as_ref().map(|p| {
                crate::swarm::epidemic::EpidemicPush::from_policy(p, self.upload_backlog_cap_us)
            }),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_apps_in_order() {
        let apps = AppProfile::paper_apps();
        let names: Vec<&str> = apps.iter().map(|a| a.name.as_str()).collect();
        assert_eq!(names, vec!["PPLive", "SopCast", "TVAnts"]);
    }

    #[test]
    fn overlay_size_ordering_matches_paper() {
        // Fig. 1 totals: PPLive 181 729 ≫ SopCast 4 057 > TVAnts 550.
        let (p, s, t) = (
            AppProfile::pplive(),
            AppProfile::sopcast(),
            AppProfile::tvants(),
        );
        assert!(p.overlay_size > s.overlay_size);
        assert!(s.overlay_size > t.overlay_size);
    }

    #[test]
    fn locality_awareness_ordering() {
        let (p, s, t) = (
            AppProfile::pplive(),
            AppProfile::sopcast(),
            AppProfile::tvants(),
        );
        assert!(t.download_policy.same_as_boost > p.download_policy.same_as_boost);
        assert_eq!(s.download_policy.same_as_boost, 1.0);
        assert!(t.discovery_as_boost > s.discovery_as_boost);
    }

    #[test]
    fn everyone_is_bw_aware() {
        for app in AppProfile::paper_apps() {
            assert!(
                app.download_policy.bw_exponent > 1.0,
                "{} must be BW-aware",
                app.name
            );
            assert!(app.discovery_bw_exponent > 0.0);
        }
    }

    #[test]
    fn pplive_is_the_amplifier() {
        let p = AppProfile::pplive();
        assert!(p.upload_target_factor > 5.0);
        assert!(p.halo_contacts_per_sec > 1.0);
        assert!(AppProfile::sopcast().upload_target_factor < 1.0);
    }

    #[test]
    fn unpopular_channel_is_a_thinner_pplive() {
        let pop = AppProfile::pplive();
        let unpop = AppProfile::pplive_unpopular();
        assert!(unpop.overlay_size < pop.overlay_size / 10);
        assert!(unpop.halo_contacts_per_sec < pop.halo_contacts_per_sec);
        assert!(unpop.upload_target_factor < pop.upload_target_factor);
        // The selection machinery is identical — only audience size and
        // intensity change.
        assert_eq!(
            unpop.download_policy.same_as_boost,
            pop.download_policy.same_as_boost
        );
        assert_eq!(unpop.download_policy.bw_exponent, pop.download_policy.bw_exponent);
    }

    #[test]
    fn uniform_variant_strips_awareness() {
        let u = AppProfile::tvants().uniform_selection();
        assert_eq!(u.name, "TVAnts-random");
        assert_eq!(u.download_policy.bw_exponent, 0.0);
        assert_eq!(u.download_policy.same_as_boost, 1.0);
        assert_eq!(u.discovery_bw_exponent, 0.0);
        assert_eq!(u.discovery_as_boost, 1.0);
    }

    #[test]
    fn distinct_neighbor_estimate() {
        let t = AppProfile::tvants();
        // One hour at ~40 min lifetime: capacity * (1 + 1.5).
        let d = t.expected_distinct_neighbors(3_600_000_000);
        assert!(d > t.max_neighbors as f64);
        assert!(d < 3.0 * t.max_neighbors as f64);
    }

    #[test]
    fn all_contains_every_registered_profile_once() {
        let names: Vec<String> = AppProfile::all().iter().map(|p| p.name.clone()).collect();
        assert_eq!(
            names,
            vec![
                "PPLive",
                "SopCast",
                "TVAnts",
                "PPLive-Unpop",
                "NAPA-NG",
                "Epidemic-RP",
                "Epidemic-BA"
            ]
        );
        // Paper apps are a strict prefix, preserving presentation order.
        let paper: Vec<String> = AppProfile::paper_apps().iter().map(|p| p.name.clone()).collect();
        assert_eq!(&names[..3], &paper[..]);
    }

    #[test]
    fn by_name_resolves_names_and_aliases() {
        for p in AppProfile::all() {
            let found = AppProfile::by_name(&p.name).expect("own name resolves");
            assert_eq!(found.name, p.name);
            let found = AppProfile::by_name(&p.name.to_ascii_uppercase()).unwrap();
            assert_eq!(found.name, p.name);
        }
        assert_eq!(AppProfile::by_name("nextgen").unwrap().name, "NAPA-NG");
        assert_eq!(AppProfile::by_name("napa-ng").unwrap().name, "NAPA-NG");
        assert_eq!(AppProfile::by_name("epidemic_rp").unwrap().name, "Epidemic-RP");
        assert_eq!(AppProfile::by_name("epidemic-ba").unwrap().name, "Epidemic-BA");
        assert!(AppProfile::by_name("no-such-app").is_none());
    }

    #[test]
    fn epidemic_profiles_differ_only_in_resource_awareness() {
        let rp = AppProfile::epidemic_rp();
        let ba = AppProfile::epidemic_ba();
        // Paper profiles are pull-only; the epidemic pair pushes.
        for p in AppProfile::paper_apps() {
            assert!(p.push.is_none(), "{} must stay pull-only", p.name);
        }
        let (rp_push, ba_push) = (rp.push.unwrap(), ba.push.unwrap());
        assert_eq!(rp_push.bw_exponent, 0.0, "RP pushes blind");
        assert!(ba_push.bw_exponent > 0.0, "BA pushes by capacity");
        assert_eq!(rp_push.pushes_per_tick, ba_push.pushes_per_tick);
        // Both are location-blind: locality fingerprints must come out
        // flat, unlike TVAnts/NAPA-NG.
        for p in [&rp, &ba] {
            assert_eq!(p.download_policy.same_as_boost, 1.0);
            assert_eq!(p.upload_policy.same_as_boost, 1.0);
            assert_eq!(p.discovery_as_boost, 1.0);
        }
    }

    #[test]
    fn contributor_width_ordering() {
        // Exploration sets contributor counts: PPLive ≫ SopCast > TVAnts.
        let (p, s, t) = (
            AppProfile::pplive(),
            AppProfile::sopcast(),
            AppProfile::tvants(),
        );
        assert!(p.exploration > s.exploration);
        assert!(s.exploration > t.exploration);
    }
}

//! # netaware-proto — mesh-pull P2P-TV protocol models
//!
//! The three applications the paper measures (PPLive, SopCast, TVAnts)
//! were proprietary; what is reproducible about them is their *observable
//! behaviour*. This crate implements one complete mesh-pull live
//! streaming protocol — chunked stream, buffer maps, tracker + gossip
//! discovery, provider selection, upload scheduling, churn, signalling —
//! and three [`profiles::AppProfile`]s that parameterise it
//! to each application's measured character.
//!
//! The deliverable of a [`swarm::Swarm`] run is a
//! [`TraceSet`](netaware_trace::TraceSet): the packet captures at the
//! probe vantage points, which feed the `netaware-analysis` crate exactly
//! as tcpdump captures fed the original study.

#![warn(missing_docs)]

pub mod chunk;
pub mod mesh;
pub mod message;
pub mod peer;
pub mod policy;
pub mod profiles;
pub mod swarm;

pub use chunk::{BufferMap, ChunkId, StreamParams, BUFFER_WINDOW};
pub use mesh::{run_mesh, MeshConfig, MeshReport};
pub use message::{Signal, MAX_SIGNAL_SIZE};
pub use peer::{PeerId, PeerInfo, PeerRole};
pub use policy::{Candidate, SelectionPolicy};
pub use profiles::AppProfile;
pub use swarm::{
    Behaviour, BehaviourAction, BehaviourStack, Ctx, Event, ExternalSpec, NetworkEnv, PeerSetup,
    ProbeSpec, Swarm, SwarmConfig, SwarmReport,
};

//! Peer identities and static descriptions.

use netaware_net::{AccessLink, Ip};
use serde::{Deserialize, Serialize};

/// Dense peer index within one swarm simulation.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug, Serialize, Deserialize)]
pub struct PeerId(pub u32);

/// What a peer is, from the simulation's point of view.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum PeerRole {
    /// The broadcast source (channel server). Has every chunk as soon as
    /// it is generated; uploads to bootstrap the swarm.
    Source,
    /// A NAPA-WINE probe: full protocol state *and* packet capture.
    Probe,
    /// An external swarm member, modelled statistically (content
    /// availability via playout lag, demand via request processes). Only
    /// its exchanges with probes materialise as packets.
    External,
}

/// Static description of a peer.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PeerInfo {
    /// Dense index.
    pub id: PeerId,
    /// Network address (resolves to AS/CC through the registry).
    pub ip: Ip,
    /// Access link: capacity + middleboxes.
    pub access: AccessLink,
    /// Role in the simulation.
    pub role: PeerRole,
}

impl PeerInfo {
    /// `true` for NAPA-WINE vantage points.
    pub fn is_probe(&self) -> bool {
        self.role == PeerRole::Probe
    }

    /// Upstream capacity in bits per second.
    pub fn up_bps(&self) -> u64 {
        self.access.class.up_bps()
    }

    /// Downstream capacity in bits per second.
    pub fn down_bps(&self) -> u64 {
        self.access.class.down_bps()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netaware_net::AccessClass;

    #[test]
    fn roles_and_capacity() {
        let p = PeerInfo {
            id: PeerId(0),
            ip: Ip::from_octets(10, 0, 0, 1),
            access: AccessLink::lan(),
            role: PeerRole::Probe,
        };
        assert!(p.is_probe());
        assert_eq!(p.up_bps(), 100_000_000);

        let e = PeerInfo {
            id: PeerId(1),
            ip: Ip::from_octets(58, 0, 0, 1),
            access: AccessLink::open(AccessClass::Dsl(4000, 384)),
            role: PeerRole::External,
        };
        assert!(!e.is_probe());
        assert_eq!(e.up_bps(), 384_000);
        assert_eq!(e.down_bps(), 4_000_000);
    }
}

//! Extension H: stream continuity under injected faults.
//!
//! ```text
//! cargo run --release --example fault_sweep [-- --scale 0.03 --secs 60 --seed 7]
//! ```
//!
//! The paper measured PPLive/SopCast/TVAnts on real access networks;
//! this sweep asks how each application profile's mesh-pull machinery
//! degrades when the network misbehaves. Every registered profile
//! (`AppProfile::all` — the paper applications plus the unpopular-channel,
//! next-generation and epidemic-push variants) runs
//! across a loss sweep (0–20%, clean links otherwise) and a churn grid
//! (preset churn alone, and churn combined with 5% loss). Reported per
//! cell: overall continuity, the worst probe's continuity, and the
//! recovery counters (packets dropped, re-queued requests, departures).
//!
//! All cells run concurrently (rayon); each cell is an independent
//! seeded experiment, so the table is deterministic for a given seed.

use netaware::testbed::{run_experiment, ExperimentOptions};
use netaware::{AppProfile, FaultPlan};
use rayon::prelude::*;

struct Cell {
    app: String,
    label: &'static str,
    continuity: f64,
    worst: f64,
    dropped: u64,
    requeued: u64,
    departed: u64,
}

fn main() {
    let mut scale = 0.03;
    let mut secs = 60;
    let mut seed = 7;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let v = it.next().expect("flag value");
        match a.as_str() {
            "--scale" => scale = v.parse().expect("scale"),
            "--secs" => secs = v.parse().expect("secs"),
            "--seed" => seed = v.parse().expect("seed"),
            other => panic!("unknown argument {other}"),
        }
    }
    let base = ExperimentOptions {
        seed,
        scale,
        duration_us: secs * 1_000_000,
        ..Default::default()
    };

    let plans: Vec<(&'static str, FaultPlan)> = vec![
        ("clean", FaultPlan::none()),
        ("loss 2%", FaultPlan::from_flags(Some(0.02), None, false)),
        ("loss 5%", FaultPlan::from_flags(Some(0.05), None, false)),
        ("loss 10%", FaultPlan::from_flags(Some(0.10), None, false)),
        ("loss 20%", FaultPlan::from_flags(Some(0.20), None, false)),
        ("churn", FaultPlan::from_flags(None, None, true)),
        ("churn+5%", FaultPlan::from_flags(Some(0.05), None, true)),
    ];

    let jobs: Vec<(AppProfile, &'static str, FaultPlan)> = AppProfile::all()
        .into_iter()
        .flat_map(|app| plans.iter().map(move |(l, p)| (app.clone(), *l, p.clone())))
        .collect();
    eprintln!("running {} fault cells…", jobs.len());

    let cells: Vec<Cell> = jobs
        .into_par_iter()
        .map(|(app, label, faults)| {
            let opts = ExperimentOptions {
                faults,
                ..base.clone()
            };
            let out = run_experiment(app, &opts);
            Cell {
                app: out.app.clone(),
                label,
                continuity: out.report.continuity(),
                worst: out.report.worst_probe().map_or(1.0, |p| p.continuity),
                dropped: out.report.packets_dropped,
                requeued: out.report.requests_requeued,
                departed: out.report.peers_departed,
            }
        })
        .collect();

    println!(
        "{:<10} {:<10} | {:>10} {:>10} | {:>9} {:>9} {:>9}",
        "app", "faults", "continuity", "worst", "dropped", "requeued", "departed"
    );
    for (app, _, _) in
        cells.iter().map(|c| (&c.app, 0, 0)).collect::<std::collections::BTreeSet<_>>()
    {
        for label in plans.iter().map(|(l, _)| *l) {
            let c = cells
                .iter()
                .find(|c| &c.app == app && c.label == label)
                .expect("cell ran");
            println!(
                "{:<10} {:<10} | {:>10.3} {:>10.3} | {:>9} {:>9} {:>9}",
                c.app, c.label, c.continuity, c.worst, c.dropped, c.requeued, c.departed
            );
        }
    }
}

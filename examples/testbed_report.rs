//! Prints the reconstructed testbed: Table I, the AS/prefix plan, and a
//! census of the synthetic external population.
//!
//! ```text
//! cargo run --release --example testbed_report [-- --scale 0.1]
//! ```

use netaware::net::CountryCode;
use netaware::testbed::{hosts, BuiltScenario, ScenarioConfig};

fn main() {
    let scale = std::env::args()
        .skip(1)
        .collect::<Vec<_>>()
        .windows(2)
        .find(|w| w[0] == "--scale")
        .map(|w| w[1].parse().expect("scale"))
        .unwrap_or(0.1);

    println!("{}", hosts::render_table1());

    let scenario = BuiltScenario::build(&ScenarioConfig { seed: 42, scale, ..Default::default() }, 20_000);

    println!("registered ASes ({}):", scenario.registry.ases().len());
    for info in scenario.registry.ases() {
        let prefixes: Vec<String> = scenario
            .registry
            .prefixes()
            .iter()
            .filter(|(_, a)| *a == info.id)
            .map(|(p, _)| p.to_string())
            .collect();
        println!(
            "  {:<6} {:<10} {:<3} {:?}  {}",
            info.id.to_string(),
            info.name,
            info.country.label(),
            info.kind,
            prefixes.join(", ")
        );
    }

    println!(
        "\nexternal population at scale {scale}: {} peers",
        scenario.externals.len()
    );
    let mut by_cc: std::collections::BTreeMap<&str, (usize, usize)> = Default::default();
    for e in &scenario.externals {
        let cc = scenario
            .registry
            .country_of(e.ip)
            .unwrap_or(CountryCode::Other);
        let entry = by_cc.entry(cc.label()).or_default();
        entry.0 += 1;
        if e.access.class.is_high_bw() {
            entry.1 += 1;
        }
    }
    println!("  {:<4} {:>8} {:>10} {:>10}", "CC", "peers", "high-bw", "share");
    for (cc, (n, high)) in &by_cc {
        println!(
            "  {:<4} {:>8} {:>10} {:>9.1}%",
            cc,
            n,
            high,
            100.0 * *n as f64 / scenario.externals.len() as f64
        );
    }

    println!(
        "\nprobes: {} total, {} high-bandwidth (institution LANs), {} home DSL/CATV",
        scenario.probes.len(),
        scenario.highbw_probe_ips.len(),
        scenario.probes.len() - scenario.highbw_probe_ips.len()
    );
}

//! Quickstart: measure the network awareness of one P2P-TV application.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Runs a scaled-down TVAnts-like experiment on the reconstructed
//! NAPA-WINE testbed and prints what the passive analysis can tell about
//! its peer selection — the whole paper in one page of output.

use netaware::testbed::{run_experiment, ExperimentOptions};
use netaware::AppProfile;

fn main() {
    // A 2-minute experiment on a 5% scale overlay: small enough for a
    // laptop, large enough for the biases to be visible.
    let opts = ExperimentOptions {
        seed: 42,
        scale: 0.05,
        duration_us: 120_000_000,
        ..Default::default()
    };

    println!("running a TVAnts-like experiment (this takes a few seconds)…\n");
    let out = run_experiment(AppProfile::tvants(), &opts);

    println!(
        "captured {} packets ({:.1} MB) at {} probes; stream continuity {:.1}%\n",
        out.analysis.total_packets,
        out.analysis.total_bytes as f64 / 1e6,
        46,
        100.0 * out.report.continuity()
    );

    println!("inferred network awareness (download side, all contributors):");
    for metric in ["BW", "AS", "CC", "NET", "HOP"] {
        let p = out.analysis.preference(metric).unwrap();
        println!(
            "  {:<4} {:5.1}% of peers, {:5.1}% of bytes in the preferred class",
            metric, p.download_all.peers_pct, p.download_all.bytes_pct
        );
    }

    let bw = out.analysis.preference("BW").unwrap();
    let r#as = out.analysis.preference("AS").unwrap();
    println!();
    if bw.download_all.bytes_pct > 80.0 {
        println!("→ the application hunts high-bandwidth peers (BW-aware)");
    }
    if r#as.download_all.bytes_pct > 3.0 * r#as.download_all.peers_pct {
        println!(
            "→ bytes concentrate on same-AS peers {}x beyond their peer share (AS-aware)",
            (r#as.download_all.bytes_pct / r#as.download_all.peers_pct).round()
        );
    }
    let hop = out.analysis.preference("HOP").unwrap();
    if (35.0..65.0).contains(&hop.download_nonw.bytes_pct) {
        println!("→ no preference for shorter paths once the probe set is excluded (not HOP-aware)");
    }
}

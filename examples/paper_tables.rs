//! Regenerates every table and figure of the paper.
//!
//! ```text
//! cargo run --release --example paper_tables [-- --scale 0.1 --secs 600 --seed 42 --json out.json --spill DIR --timings]
//! ```
//!
//! Runs the three applications (PPLive-, SopCast-, TVAnts-like) on the
//! reconstructed NAPA-WINE testbed, applies the passive analysis, and
//! prints Tables I–IV and Figures 1–2 in the paper's layout. `--scale 1.0
//! --secs 3600` reproduces the original experiment size (minutes of CPU,
//! GBs of in-memory traces); the defaults are laptop-friendly. With
//! `--spill DIR`, each application's capture is streamed to an on-disk
//! corpus under `DIR/<app>/` and analysed back off disk, bounding peak
//! memory at paper scale. `--timings` attaches an observability handle
//! and prints per-phase wall-clock spans (swarm, analysis sweep,
//! reduction) after the tables.

use netaware::analysis::tables;
use netaware::obs::NullSink;
use netaware::testbed::{self, ExperimentOptions};
use netaware::Obs;
use std::sync::Arc;

struct Args {
    scale: f64,
    secs: u64,
    seed: u64,
    json: Option<String>,
    spill: Option<String>,
    timings: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        scale: 0.1,
        secs: 420,
        seed: 42,
        json: None,
        spill: None,
        timings: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut val = |name: &str| {
            it.next()
                .unwrap_or_else(|| panic!("{name} needs a value"))
        };
        match a.as_str() {
            "--scale" => args.scale = val("--scale").parse().expect("scale"),
            "--secs" => args.secs = val("--secs").parse().expect("secs"),
            "--seed" => args.seed = val("--seed").parse().expect("seed"),
            "--json" => args.json = Some(val("--json")),
            "--spill" => args.spill = Some(val("--spill")),
            "--timings" => args.timings = true,
            other => panic!("unknown argument {other}"),
        }
    }
    args
}

fn main() {
    let args = parse_args();
    // Timings only need the span recorder; events go to a null sink.
    let obs = if args.timings {
        Obs::new(Arc::new(NullSink::new()))
    } else {
        Obs::default()
    };
    let opts = ExperimentOptions {
        seed: args.seed,
        scale: args.scale,
        duration_us: args.secs * 1_000_000,
        obs: obs.clone(),
        ..Default::default()
    };

    println!("{}", testbed::hosts::render_table1());

    eprintln!(
        "running 3 experiments (scale {}, {} s, seed {}) …",
        args.scale, args.secs, args.seed
    );
    let t0 = std::time::Instant::now();
    let outs = match &args.spill {
        // Spilled variant: each app's capture goes to its own corpus
        // directory and the analysis streams it back off disk.
        Some(dir) => {
            use rayon::prelude::*;
            netaware::AppProfile::paper_apps()
                .into_par_iter()
                .map(|p| {
                    let sub = std::path::Path::new(dir).join(&p.name);
                    testbed::run_streamed(p, &opts, &sub).expect("streamed run")
                })
                .collect()
        }
        None => testbed::run_paper_suite(&opts),
    };
    eprintln!("done in {:.1?}\n", t0.elapsed());
    if let Some(dir) = &args.spill {
        eprintln!("trace corpora left under {dir}/<app>/\n");
    }

    let summaries: Vec<_> = outs.iter().map(|o| o.analysis.summary.clone()).collect();
    println!("{}", tables::render_table2(&summaries));

    let fig1: Vec<_> = outs
        .iter()
        .map(|o| (o.app.clone(), o.analysis.geo.clone()))
        .collect();
    println!("{}", tables::render_fig1(&fig1));

    let t3: Vec<_> = outs
        .iter()
        .map(|o| (o.app.clone(), o.analysis.selfbias))
        .collect();
    println!("{}", tables::render_table3(&t3));

    let blocks: Vec<_> = outs
        .iter()
        .map(|o| (o.app.clone(), o.analysis.preferences.clone()))
        .collect();
    println!("{}", tables::render_table4(&blocks));

    let fig2: Vec<_> = outs
        .iter()
        .map(|o| (o.app.clone(), o.analysis.asmatrix.clone()))
        .collect();
    println!("{}", tables::render_fig2(&fig2));

    println!("HOP DISTRIBUTIONS (§III-B: medians should sit near the fixed threshold 19)");
    for o in &outs {
        print!("{}", o.analysis.hop_distribution.render(&o.app));
    }
    println!();

    println!("NETWORK FRIENDLINESS (extension metrics)");
    println!(
        "  {:<8} {:>9} {:>9} {:>9} {:>10} {:>10}",
        "app", "subnet%", "intraAS%", "intraCC%", "transit%", "hops/byte"
    );
    for o in &outs {
        let f = &o.analysis.friendliness;
        println!(
            "  {:<8} {:>9.1} {:>9.1} {:>9.1} {:>10.1} {:>10.1}",
            o.app, f.subnet_pct, f.intra_as_pct, f.intra_cc_pct, f.transit_pct, f.mean_hops_per_byte
        );
    }
    println!();

    for o in &outs {
        println!(
            "[truth] {:<8} continuity {:.3}, {} pkts captured, {} events",
            o.app,
            o.report.continuity(),
            o.analysis.total_packets,
            o.report.events_dispatched
        );
    }

    if args.timings {
        println!("PHASE TIMINGS (wall clock, all three apps; spans overlap across rayon workers)");
        for t in obs.timings() {
            println!("  {:<20} {:>10.3} ms", t.name, t.elapsed_us as f64 / 1000.0);
        }
        println!();
    }

    if let Some(path) = args.json {
        let all: Vec<_> = outs.iter().map(|o| &o.analysis).collect();
        let js = serde_json::to_string_pretty(&all).expect("serialise");
        std::fs::write(&path, js).expect("write json");
        eprintln!("analysis written to {path}");
    }
}

//! The experiment the paper asks for: how much friendlier could a
//! network-aware P2P-TV client be?
//!
//! ```text
//! cargo run --release --example nextgen [-- --scale 0.08 --secs 300 --seed 42]
//! ```
//!
//! Runs the three 2008 incumbents plus the hypothetical `NAPA-NG`
//! profile (SopCast-like mechanics with aggressive AS/CC locality) on
//! the same testbed and compares traffic locality, transit share, mean
//! router distance per byte, and stream health — quantifying the
//! paper's concluding claim that "future P2P-TV applications could
//! improve the level of network-awareness […] and thus increase their
//! network-friendliness as well".

use netaware::testbed::{run_experiment, ExperimentOptions};
use netaware::AppProfile;
use rayon::prelude::*;

fn main() {
    let mut scale = 0.08;
    let mut secs = 300;
    let mut seed = 42;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let v = it.next().expect("flag value");
        match a.as_str() {
            "--scale" => scale = v.parse().expect("scale"),
            "--secs" => secs = v.parse().expect("secs"),
            "--seed" => seed = v.parse().expect("seed"),
            other => panic!("unknown argument {other}"),
        }
    }
    let opts = ExperimentOptions {
        seed,
        scale,
        duration_us: secs * 1_000_000,
        ..Default::default()
    };

    let mut profiles = AppProfile::paper_apps();
    profiles.push(AppProfile::nextgen());

    eprintln!("running {} experiments…", profiles.len());
    let outs: Vec<_> = profiles
        .into_par_iter()
        .map(|p| run_experiment(p, &opts))
        .collect();

    println!(
        "{:<10} {:>9} {:>9} {:>9} {:>10} {:>11} {:>11}",
        "app", "subnet%", "intraAS%", "intraCC%", "transit%", "hops/byte", "continuity"
    );
    for o in &outs {
        let f = &o.analysis.friendliness;
        println!(
            "{:<10} {:>9.1} {:>9.1} {:>9.1} {:>10.1} {:>11.1} {:>11.3}",
            o.app,
            f.subnet_pct,
            f.intra_as_pct,
            f.intra_cc_pct,
            f.transit_pct,
            f.mean_hops_per_byte,
            o.report.continuity()
        );
    }

    let incumbent_best = outs
        .iter()
        .filter(|o| o.app != "NAPA-NG")
        .map(|o| o.analysis.friendliness.transit_pct)
        .fold(f64::MAX, f64::min);
    let ng = outs
        .iter()
        .find(|o| o.app == "NAPA-NG")
        .expect("NG profile ran");
    println!(
        "\nNAPA-NG transit share {:.1}% vs best incumbent {:.1}% — {:.1} points of \
         inter-AS traffic removed, at continuity {:.3}.",
        ng.analysis.friendliness.transit_pct,
        incumbent_best,
        incumbent_best - ng.analysis.friendliness.transit_pct,
        ng.report.continuity()
    );
}

//! Trace tooling walkthrough: capture, serialise, export to pcap, read
//! back, aggregate flows.
//!
//! ```text
//! cargo run --release --example trace_inspect [-- --out /tmp/netaware-traces]
//! ```
//!
//! Runs a short SopCast-like experiment, persists one probe's capture in
//! both the native binary format and classic pcap (openable in
//! wireshark/tcpdump), re-imports both, verifies they agree, and prints
//! the probe's top contributors with their inferred bandwidth class.

use netaware::analysis::flows::aggregate_probe;
use netaware::analysis::ipg::{bw_class, BwClass};
use netaware::analysis::AnalysisConfig;
use netaware::testbed::{run_experiment, ExperimentOptions};
use netaware::trace::pcap::{export_pcap, import_pcap};
use netaware::trace::{read_trace, write_trace};
use netaware::AppProfile;
use std::fs::File;
use std::io::{BufReader, BufWriter};

fn main() {
    let out_dir = std::env::args()
        .collect::<Vec<_>>()
        .windows(2)
        .find(|w| w[0] == "--out")
        .map(|w| w[1].clone())
        .unwrap_or_else(|| "/tmp/netaware-traces".into());
    std::fs::create_dir_all(&out_dir).expect("create output dir");

    let opts = ExperimentOptions {
        seed: 11,
        scale: 0.05,
        duration_us: 90_000_000,
        keep_traces: true,
        ..Default::default()
    };
    eprintln!("running a 90 s SopCast-like experiment…");
    let out = run_experiment(AppProfile::sopcast(), &opts);
    let traces = out.traces.expect("keep_traces was set");

    // Pick the busiest probe.
    let mut trace = traces
        .traces
        .into_iter()
        .max_by_key(|t| t.len())
        .expect("at least one probe");
    trace.finalize();
    println!(
        "busiest probe {}: {} packets, {:.2} MB",
        trace.probe,
        trace.len(),
        trace.total_bytes() as f64 / 1e6
    );

    // Native binary format round trip.
    let bin_path = format!("{out_dir}/probe.nawt");
    write_trace(&trace, &mut BufWriter::new(File::create(&bin_path).unwrap())).unwrap();
    let back = read_trace(&mut BufReader::new(File::open(&bin_path).unwrap())).unwrap();
    assert_eq!(back.len(), trace.len());
    println!(
        "binary round trip OK → {bin_path} ({} bytes)",
        std::fs::metadata(&bin_path).unwrap().len()
    );

    // Classic pcap export + import.
    let pcap_path = format!("{out_dir}/probe.pcap");
    export_pcap(&trace, &mut BufWriter::new(File::create(&pcap_path).unwrap())).unwrap();
    let (reimported, skipped) =
        import_pcap(trace.probe, &mut BufReader::new(File::open(&pcap_path).unwrap())).unwrap();
    assert_eq!(skipped, 0);
    assert_eq!(reimported.len(), trace.len());
    println!(
        "pcap round trip OK → {pcap_path} ({} bytes, opens in wireshark)",
        std::fs::metadata(&pcap_path).unwrap().len()
    );

    // Flow aggregation: top contributors by received bytes.
    let cfg = AnalysisConfig::default();
    let pf = aggregate_probe(&trace, &cfg);
    let mut flows: Vec<_> = pf.flows.values().collect();
    flows.sort_by_key(|f| std::cmp::Reverse(f.bytes_rx));
    println!("\ntop contributors to {} (download):", trace.probe);
    println!(
        "{:<18} {:>10} {:>8} {:>9} {:>6}",
        "remote", "RX bytes", "pkts", "min IPG", "class"
    );
    for f in flows.iter().take(10) {
        let class = match bw_class(f, &cfg) {
            BwClass::High => "high",
            BwClass::Low => "low",
            BwClass::Unknown => "?",
        };
        println!(
            "{:<18} {:>10} {:>8} {:>8}µs {:>6}",
            f.remote.to_string(),
            f.bytes_rx,
            f.pkts_rx,
            f.min_ipg_us.map(|g| g.to_string()).unwrap_or("-".into()),
            class
        );
    }
}

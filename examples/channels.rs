//! Channel-popularity comparison: PPLive on the popular CCTV-1 channel
//! vs a less-popular one (the two PPLive panels of the paper's Fig. 2).
//!
//! ```text
//! cargo run --release --example channels [-- --scale 0.1 --secs 240 --seed 42]
//! ```
//!
//! The selection machinery is identical across the two runs — only the
//! audience shrinks — so differences in peer counts, upload
//! amplification, and the AS matrix are attributable to channel
//! popularity, matching the paper's observation that the popular
//! channel's intra-AS exchange was dominated by LAN-local traffic.

use netaware::testbed::{run_experiment, ExperimentOptions};
use netaware::AppProfile;
use rayon::prelude::*;

fn main() {
    let mut scale = 0.1;
    let mut secs = 240;
    let mut seed = 42;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let v = it.next().expect("flag value");
        match a.as_str() {
            "--scale" => scale = v.parse().expect("scale"),
            "--secs" => secs = v.parse().expect("secs"),
            "--seed" => seed = v.parse().expect("seed"),
            other => panic!("unknown argument {other}"),
        }
    }
    let opts = ExperimentOptions {
        seed,
        scale,
        duration_us: secs * 1_000_000,
        ..Default::default()
    };

    eprintln!("running PPLive popular + unpopular…");
    let outs: Vec<_> = vec![AppProfile::pplive(), AppProfile::pplive_unpopular()]
        .into_par_iter()
        .map(|p| run_experiment(p, &opts))
        .collect();

    println!(
        "{:<14} {:>9} {:>9} {:>9} {:>9} {:>9} {:>8}",
        "channel", "peers", "cRX", "TX kb/s", "AS B_D%", "NET B_D%", "Fig2 R"
    );
    for o in &outs {
        let a = &o.analysis;
        println!(
            "{:<14} {:>9.0} {:>9.0} {:>9.0} {:>9.1} {:>9.1} {:>8.2}",
            o.app,
            a.summary.peers.mean,
            a.summary.contrib_rx.mean,
            a.summary.tx_kbps.mean,
            a.preference("AS").unwrap().download_all.bytes_pct,
            a.preference("NET").unwrap().download_all.bytes_pct,
            a.asmatrix.r_ratio,
        );
    }

    let pop = &outs[0].analysis;
    let unpop = &outs[1].analysis;
    println!(
        "\nthe thin channel contacts {:.0}x fewer peers and uploads {:.1}x less, with \
         the same selection policy — popularity, not protocol, drives the scale gap.",
        pop.summary.peers.mean / unpop.summary.peers.mean.max(1.0),
        pop.summary.tx_kbps.mean / unpop.summary.tx_kbps.mean.max(1.0),
    );
}

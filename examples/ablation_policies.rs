//! Ablation: does the analysis *infer* awareness, or merely reflect the
//! testbed's composition?
//!
//! ```text
//! cargo run --release --example ablation_policies [-- --scale 0.05 --secs 180 --seed 7]
//! ```
//!
//! Each paper application runs twice: once with its native behaviour
//! stack and once with every selection decision replaced by
//! uniform-random (the `*-random` control arm). An application profile
//! is just a parameterisation of the behaviour stack
//! (`AppProfile::stack()` → discovery / announce / churn-recovery /
//! scheduling modules); `uniform_selection()` keeps the stack shape —
//! same hooks, same event order, same RNG streams — and neutralises
//! only the selection weights: the discovery behaviour's BW/AS bias
//! and the scheduling behaviour's provider-draft and upload policies.
//! If the framework is sound, the native arms show the
//! paper's biases and the uniform arms show none — on the *same*
//! testbed, population, and traffic volumes.

use netaware::testbed::{run_ablation, ExperimentOptions};

fn main() {
    let mut scale = 0.05;
    let mut secs = 180;
    let mut seed = 7;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let v = it.next().expect("flag value");
        match a.as_str() {
            "--scale" => scale = v.parse().expect("scale"),
            "--secs" => secs = v.parse().expect("secs"),
            "--seed" => seed = v.parse().expect("seed"),
            other => panic!("unknown argument {other}"),
        }
    }
    let opts = ExperimentOptions {
        seed,
        scale,
        duration_us: secs * 1_000_000,
        ..Default::default()
    };

    eprintln!("running 3 native + 3 uniform-selection experiments…");
    let pairs = run_ablation(&opts);

    println!(
        "{:<16} | {:>8} {:>8} | {:>8} {:>8} | {:>8} {:>8}",
        "app", "BW B_D%", "(rand)", "AS B_D%", "(rand)", "HOP B_D%", "(rand)"
    );
    for (native, uniform) in &pairs {
        let cell = |o: &netaware::testbed::ExperimentOutput, m: &str| {
            o.analysis
                .preference(m)
                .map(|p| p.download_all.bytes_pct)
                .unwrap_or(f64::NAN)
        };
        println!(
            "{:<16} | {:>8.1} {:>8.1} | {:>8.1} {:>8.1} | {:>8.1} {:>8.1}",
            native.app,
            cell(native, "BW"),
            cell(uniform, "BW"),
            cell(native, "AS"),
            cell(uniform, "AS"),
            cell(native, "HOP"),
            cell(uniform, "HOP"),
        );
    }

    println!();
    for (native, uniform) in &pairs {
        let cmp = netaware::analysis::compare::compare(&native.analysis, &uniform.analysis);
        println!("{}", cmp.render());
    }
    println!(
        "Every 'Collapsed'/'Reduced' verdict above is a bias that exists under the\n\
         native behaviour stack and vanishes when its selection weights are\n\
         neutralised on the identical testbed — i.e. a property of the application's\n\
         behaviour parameterisation, not of the population."
    );
}

//! Cross-seed replication: the paper's findings with error bars.
//!
//! ```text
//! cargo run --release --example replication [-- --runs 5 --scale 0.05 --secs 180]
//! ```
//!
//! The original study aggregated >120 hours of repeated experiments;
//! this example repeats each application run under several seeds and
//! reports mean ± stddev for the headline metrics, demonstrating that
//! the reproduction's conclusions are seed-stable and not one lucky
//! sample.

use netaware::testbed::{run_replicated, ExperimentOptions};
use netaware::AppProfile;

fn main() {
    let mut runs = 5u64;
    let mut scale = 0.05;
    let mut secs = 180;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let v = it.next().expect("flag value");
        match a.as_str() {
            "--runs" => runs = v.parse().expect("runs"),
            "--scale" => scale = v.parse().expect("scale"),
            "--secs" => secs = v.parse().expect("secs"),
            other => panic!("unknown argument {other}"),
        }
    }
    let base = ExperimentOptions {
        scale,
        duration_us: secs * 1_000_000,
        ..Default::default()
    };
    let seeds: Vec<u64> = (0..runs).map(|i| 1000 + i * 37).collect();

    for profile in AppProfile::paper_apps() {
        eprintln!("replicating {} × {} …", profile.name, seeds.len());
        let (summary, _) = run_replicated(&profile, &base, &seeds);
        println!("{}", summary.render());
    }

    println!(
        "Conclusions that must hold in every run: BW bytes ≫ 90 %, HOP (non-W) ≈ 50 %,\n\
         AS bytes ordered TVAnts > PPLive > SopCast. Tight stddevs above demonstrate\n\
         the analysis output is a property of the application profile, not of the seed."
    );
}

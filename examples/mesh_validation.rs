//! Validates the statistical external-peer model against a ground-up
//! full-mesh simulation.
//!
//! ```text
//! cargo run --release --example mesh_validation [-- --peers 800 --secs 240 --seed 42]
//! ```
//!
//! The swarm simulation assumes external peers hold every chunk older
//! than a fixed playout lag drawn uniformly from 0.5–5 s (1–10 chunk
//! intervals). Here a complete chunk-level mesh — every peer genuinely
//! pulling from neighbors under capacity constraints — is run from
//! first principles, and the *emergent* acquisition-lag distribution is
//! compared against that assumption.

use netaware::proto::mesh::{run_mesh, MeshConfig};
use netaware::proto::StreamParams;

fn main() {
    let mut peers = 800usize;
    let mut secs = 240u64;
    let mut seed = 42u64;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let v = it.next().expect("flag value");
        match a.as_str() {
            "--peers" => peers = v.parse().expect("peers"),
            "--secs" => secs = v.parse().expect("secs"),
            "--seed" => seed = v.parse().expect("seed"),
            other => panic!("unknown argument {other}"),
        }
    }

    let cfg = MeshConfig::cctv1(peers, seed, secs * 1_000_000);
    eprintln!(
        "running a full {peers}-peer chunk-level mesh for {secs}s (every peer simulated)…"
    );
    let t0 = std::time::Instant::now();
    let r = run_mesh(&cfg);
    eprintln!("done in {:.1?}", t0.elapsed());

    let interval_ms = StreamParams::cctv1().chunk_interval_us() / 1000;
    println!(
        "\n{} chunk acquisitions, continuity {:.4}",
        r.delivered,
        r.continuity()
    );
    println!(
        "acquisition lag: mean {:.1} chunks ({:.1} s), median {} chunks, p95 {} chunks",
        r.mean_lag_chunks,
        r.mean_lag_chunks * interval_ms as f64 / 1000.0,
        r.median_lag_chunks,
        r.p95_lag_chunks
    );
    println!(
        "high-bandwidth peers acquire at {:.2} chunks mean lag, low-bandwidth at {:.2}",
        r.mean_lag_high, r.mean_lag_low
    );

    // Histogram.
    let total: u64 = r.lag_counts.iter().sum();
    println!("\nlag distribution (chunk intervals):");
    for (i, &c) in r.lag_counts.iter().take(16).enumerate() {
        let pct = 100.0 * c as f64 / total.max(1) as f64;
        let bar = "#".repeat((pct / 2.0).round() as usize);
        println!("  {i:>2} | {pct:>5.1}% {bar}");
    }

    let mass = r.lag_mass_in(1, 10);
    println!(
        "\nassumption check: the swarm's external model draws lags uniformly from\n\
         1–10 chunk intervals (0.5–5 s); the emergent mesh puts {:.0}% of its\n\
         non-seed acquisitions in that band — the substitution is {}.",
        100.0 * mass,
        if mass > 0.6 { "supported" } else { "NOT supported" }
    );
}

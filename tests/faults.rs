//! Property tests for the fault-injection subsystem: graceful
//! degradation under loss, liveness under heavy churn, and survival of
//! tracker blackouts. The byte-identity guarantees (same-seed fault
//! runs, no-op plans) live in `tests/determinism.rs`.

use netaware::analysis::AnalysisConfig;
use netaware::testbed::{run_experiment, ExperimentOptions};
use netaware::{AppProfile, ChurnPlan, FaultPlan, TrackerOutage};

fn options(faults: FaultPlan) -> ExperimentOptions {
    ExperimentOptions {
        seed: 99,
        scale: 0.03,
        duration_us: 30_000_000,
        analysis: AnalysisConfig::default(),
        keep_traces: false,
        obs: netaware::Obs::default(),
        faults,
        shards: 1,
    }
}

fn continuity_under_loss(loss: f64) -> f64 {
    let plan = FaultPlan::from_flags((loss > 0.0).then_some(loss), None, false);
    let out = run_experiment(AppProfile::tvants(), &options(plan));
    out.report.continuity()
}

#[test]
fn continuity_degrades_monotonically_with_loss() {
    // Graceful degradation: more loss can only hurt. Retransmission
    // recovers mild loss almost entirely, so allow a hair of slack for
    // the re-ordering noise loss injects into the request schedule, but
    // the ordering across big steps must hold and heavy loss must
    // visibly bite.
    let levels = [0.0, 0.05, 0.15, 0.35];
    let conts: Vec<f64> = levels.iter().map(|l| continuity_under_loss(*l)).collect();
    for w in conts.windows(2) {
        assert!(
            w[1] <= w[0] + 0.02,
            "continuity went up with more loss: {conts:?}"
        );
    }
    assert!(
        conts[0] - conts[3] > 0.05,
        "35% loss barely dented continuity: {conts:?}"
    );
    assert!(conts[0] > 0.9, "clean baseline unhealthy: {conts:?}");
}

#[test]
fn heavy_churn_never_deadlocks() {
    // ~30% of externals offline at any instant (offline/(session+offline)
    // with 35 s sessions and 15 s gaps), a third starting offline, plus
    // link loss. The run must terminate, keep delivering, and every
    // departure must eventually be matched by re-arrivals.
    let plan = FaultPlan {
        churn: Some(ChurnPlan {
            session_mean_us: 35_000_000,
            offline_mean_us: 15_000_000,
            initial_offline: 0.33,
            tracker_outages: Vec::new(),
        }),
        ..FaultPlan::from_flags(Some(0.05), None, false)
    };
    let out = run_experiment(AppProfile::sopcast(), &options(plan));
    let r = &out.report;
    assert!(r.peers_departed > 0, "no churn materialised");
    assert!(r.peers_arrived > 0, "offline peers never returned");
    assert!(r.chunks_delivered > 0, "swarm starved to death");
    assert!(
        r.continuity() > 0.3,
        "churn collapsed the stream: continuity {}",
        r.continuity()
    );
    // Every probe still produced a report row — nobody wedged.
    assert!(!r.per_probe.is_empty());
    for p in &r.per_probe {
        assert!(p.delivered > 0, "probe {} wedged", p.probe);
    }
}

#[test]
fn tracker_outage_window_is_survivable() {
    // A 10 s discovery blackout mid-run: departed peers cannot be
    // replaced during the window, but the swarm must ride it out.
    let plan = FaultPlan {
        churn: Some(ChurnPlan {
            tracker_outages: vec![TrackerOutage {
                start_us: 10_000_000,
                duration_us: 10_000_000,
            }],
            ..ChurnPlan::preset()
        }),
        ..FaultPlan::none()
    };
    let out = run_experiment(AppProfile::pplive(), &options(plan));
    assert!(out.report.peers_departed > 0);
    assert!(
        out.report.continuity() > 0.5,
        "blackout killed the stream: {}",
        out.report.continuity()
    );
}

#[test]
fn requeue_recovery_beats_timeout_only_waiting() {
    // The mid-transfer-crash recovery path must actually fire under
    // churn: requests stranded on departed providers get re-queued.
    // Short sessions make departures frequent; loss keeps requests
    // in flight longer (retransmissions), so strandings are common.
    let plan = FaultPlan {
        churn: Some(ChurnPlan {
            session_mean_us: 8_000_000,
            offline_mean_us: 5_000_000,
            initial_offline: 0.0,
            tracker_outages: Vec::new(),
        }),
        ..FaultPlan::from_flags(Some(0.15), None, false)
    };
    let out = run_experiment(AppProfile::tvants(), &options(plan));
    assert!(
        out.report.requests_requeued > 0,
        "churny run never exercised the requeue path"
    );
}

#[test]
fn example_plan_round_trips_and_validates() {
    let example = FaultPlan::example_json();
    let plan = FaultPlan::from_json(&example).expect("example must parse");
    plan.validate().expect("example must validate");
    assert!(!plan.is_noop());
    let back = FaultPlan::from_json(&plan.to_json()).expect("round trip");
    assert_eq!(plan, back);
}

#[test]
fn invalid_plans_are_rejected() {
    let mut plan = FaultPlan::none();
    plan.link.loss = 1.5;
    assert!(plan.validate().is_err(), "loss > 1 accepted");
    let mut plan = FaultPlan::none();
    plan.churn = Some(ChurnPlan {
        session_mean_us: 0,
        ..ChurnPlan::preset()
    });
    assert!(plan.validate().is_err(), "zero session mean accepted");
}

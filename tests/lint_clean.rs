//! The workspace must satisfy its own determinism lints.
//!
//! This is the enforcement end of the lint catalogue (see DESIGN.md):
//! every rule either holds everywhere in first-party code or is
//! suppressed by an in-source justified `netaware-lint: allow(...)`.

use std::path::Path;

#[test]
fn workspace_is_lint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let diags = netaware_xtask::lint_workspace(root).expect("workspace readable");
    assert!(
        diags.is_empty(),
        "lint violations:\n{}",
        diags
            .iter()
            .map(|d| d.render())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

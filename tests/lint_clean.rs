//! The workspace must satisfy its own determinism lints.
//!
//! This is the enforcement end of the lint catalogue (see DESIGN.md):
//! every rule either holds everywhere in first-party code, is suppressed
//! by an in-source justified `netaware-lint: allow(...)`, or — for
//! warn-level rules landed over pre-existing code — is recorded in the
//! checked-in `lint-baseline.json`, which must itself stay exact.

use netaware_xtask::baseline::Baseline;
use std::path::Path;

fn lint() -> netaware_xtask::LintReport {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let diags = netaware_xtask::lint_workspace(root).expect("workspace readable");
    let text = std::fs::read_to_string(root.join("lint-baseline.json"))
        .expect("lint-baseline.json present at the workspace root");
    let base = Baseline::parse(&text).expect("lint-baseline.json parses");
    netaware_xtask::apply_baseline(diags, Some(&base))
}

#[test]
fn workspace_is_lint_clean_modulo_baseline() {
    let report = lint();
    assert!(
        report.active.is_empty(),
        "unsuppressed lint findings:\n{}",
        report
            .active
            .iter()
            .map(|d| d.render())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn baseline_has_no_stale_entries() {
    let report = lint();
    assert!(
        report.stale.is_empty(),
        "stale baseline entries (regenerate with `cargo run -p netaware-xtask -- lint \
         --write-baseline`):\n{}",
        report.stale.join("\n")
    );
}

#[test]
fn lint_output_is_byte_stable() {
    let a = lint();
    let b = lint();
    assert_eq!(
        netaware_xtask::json_report(&a.active),
        netaware_xtask::json_report(&b.active)
    );
    assert_eq!(
        netaware_xtask::sarif::report(&a.active, &a.suppressed),
        netaware_xtask::sarif::report(&b.active, &b.suppressed)
    );
}

//! Golden-artifact regression pin for the behaviour-layer refactor.
//!
//! The behaviour decomposition (DESIGN.md "Behaviour composition")
//! promised that same-seed runs stay **byte-identical** to the
//! pre-refactor monolithic handler. These tests pin that promise with
//! checked-in fingerprints: the corpus bytes, the obs event log, and
//! the metrics snapshot of all three paper profiles — plan-free and
//! fault-armed — hashed and compared against constants generated from
//! the last pre-refactor commit. The epidemic push profiles
//! (Epidemic-RP / Epidemic-BA) are pinned the same way, with an extra
//! assertion that the two push policies stay mutually distinguishable.
//!
//! Since the sharded parallel engine landed, every cell runs across the
//! full shard axis (`SHARD_AXIS` = 1/2/8 workers) and must reproduce
//! the *same* fingerprints at every worker count: parallelism is a pure
//! speed knob, never an output knob.
//!
//! The one sanctioned divergence is the per-behaviour event *naming*
//! (`swarm.handshake` → `swarm.discovery.handshake`, …): the obs log is
//! normalised back to the legacy names before hashing, so a rename is
//! invisible here while any payload/ordering drift still trips the pin.
//!
//! To regenerate after an *intentional* trace-affecting change:
//!
//! ```text
//! cargo test --test golden_behaviours -- --ignored --nocapture
//! ```
//!
//! and paste the printed table over `GOLDEN` below, saying why in the
//! commit message.

use netaware::analysis::AnalysisConfig;
use netaware::obs::RingSink;
use netaware::testbed::{run_experiment, ExperimentOptions};
use netaware::trace::write_trace;
use netaware::{AppProfile, FaultPlan, Obs};
use std::sync::Arc;

/// Behaviour-scoped target → legacy (pre-refactor) target. Applied to
/// the obs log before hashing; corpus and metrics compare raw.
const RENAMES: &[(&str, &str)] = &[
    ("swarm.discovery.handshake", "swarm.handshake"),
    ("swarm.scheduling.chunk_sched", "swarm.chunk_sched"),
    ("swarm.scheduling.chunk_expired", "swarm.chunk_expired"),
    ("swarm.scheduling.serve_refused", "swarm.serve_refused"),
    ("swarm.churn.peer_departed", "swarm.peer_departed"),
    ("swarm.churn.peer_arrived", "swarm.peer_arrived"),
    ("swarm.churn.requests_requeued", "swarm.requests_requeued"),
];

fn normalize(log: &str) -> String {
    let mut out = log.to_string();
    for (new, old) in RENAMES {
        out = out.replace(
            &format!("\"target\":\"{new}\""),
            &format!("\"target\":\"{old}\""),
        );
    }
    out
}

/// FNV-1a 64-bit: dependency-free, stable across platforms.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Shard-worker counts every golden cell is checked under. The sharded
/// engine promises byte-identical artifacts at any worker count, so the
/// same fingerprints must reproduce across the whole axis.
const SHARD_AXIS: &[usize] = &[1, 2, 8];

fn options(faults: FaultPlan, obs: Obs, shards: usize) -> ExperimentOptions {
    ExperimentOptions {
        seed: 777,
        scale: 0.02,
        duration_us: 20_000_000,
        analysis: AnalysisConfig::default(),
        keep_traces: true,
        obs,
        faults,
        shards,
    }
}

/// One observed run → (corpus hash, normalised obs-log hash, metrics hash).
fn fingerprint(profile: AppProfile, faults: FaultPlan, shards: usize) -> (u64, u64, u64) {
    let sink = Arc::new(RingSink::new(1 << 22));
    let obs = Obs::new(sink.clone() as Arc<dyn netaware::obs::EventSink>);
    let out = run_experiment(profile, &options(faults, obs.clone(), shards));
    let traces = out.traces.expect("keep_traces is set");
    let mut corpus = Vec::new();
    for t in &traces.traces {
        write_trace(t, &mut corpus).expect("in-memory write");
    }
    let log: String = sink
        .snapshot()
        .iter()
        .map(|e| {
            let mut line = e.to_jsonl();
            line.push('\n');
            line
        })
        .collect();
    assert!(log.lines().count() > 50, "suspiciously small event log");
    let metrics = obs.metrics().expect("obs enabled").to_json();
    (
        fnv1a(&corpus),
        fnv1a(normalize(&log).as_bytes()),
        fnv1a(metrics.as_bytes()),
    )
}

fn fault_plan() -> FaultPlan {
    FaultPlan::from_flags(Some(0.05), Some(2_000), true)
}

struct Golden {
    app: &'static str,
    faulted: bool,
    corpus: u64,
    obs_log: u64,
    metrics: u64,
}

/// Fingerprints of the current engine (seed 777, scale 0.02, 20 s).
/// Last regenerated for the sharded-core rewrite, whose receiver-side
/// wire model (explicit `ChunkRx`/`SignalRx` arrival events) is a
/// sanctioned trace-affecting change; every cell must reproduce these
/// bytes at 1, 2, and 8 shard workers alike.
const GOLDEN: &[Golden] = &[
    Golden { app: "PPLive", faulted: false, corpus: 0xc138c8aab60ccdf4, obs_log: 0x9586a9df3958f2e9, metrics: 0x205509e05444cf95 },
    Golden { app: "PPLive", faulted: true, corpus: 0x08461cc584e098be, obs_log: 0x9c7b414ee4c496b6, metrics: 0xe587f424aa94650b },
    Golden { app: "SopCast", faulted: false, corpus: 0x94a061318cadb6fc, obs_log: 0xd2b96dfc6840617f, metrics: 0xb99e2185ae496b5b },
    Golden { app: "SopCast", faulted: true, corpus: 0xe352c7abd446e85d, obs_log: 0x8fc32b09f760b90b, metrics: 0x7d58c0fbf4815f89 },
    Golden { app: "TVAnts", faulted: false, corpus: 0x8d6d98cf22f22728, obs_log: 0xe757145bfe98a813, metrics: 0xf131d489d1ecbf89 },
    Golden { app: "TVAnts", faulted: true, corpus: 0x2fbedd7ff4d806fb, obs_log: 0xf5f11083306d89d4, metrics: 0x83170092cf65f013 },
    Golden { app: "Epidemic-RP", faulted: false, corpus: 0x029e634dc01fb8cd, obs_log: 0x7ffbff52c3642a91, metrics: 0xdad33ca7ab82f6e1 },
    Golden { app: "Epidemic-RP", faulted: true, corpus: 0xc96981c22c6993e9, obs_log: 0xffb06796e0d6b366, metrics: 0x42299d78469a5351 },
    Golden { app: "Epidemic-BA", faulted: false, corpus: 0x9fe5d7a2072bd7db, obs_log: 0x15bcb6a057c0955e, metrics: 0x65089d060351e231 },
    Golden { app: "Epidemic-BA", faulted: true, corpus: 0xd821e17b13bb1108, obs_log: 0x2b318cbf73b40c1b, metrics: 0xabdff705c366be63 },
];

fn profile_by_name(name: &str) -> AppProfile {
    AppProfile::by_name(name).unwrap_or_else(|| panic!("unknown app {name}"))
}

/// Every golden cell's app, in table order: the three paper profiles
/// plus the two epidemic push profiles.
const GOLDEN_APPS: &[&str] = &["PPLive", "SopCast", "TVAnts", "Epidemic-RP", "Epidemic-BA"];

fn check(g: &Golden) {
    let faults = if g.faulted { fault_plan() } else { FaultPlan::none() };
    for &shards in SHARD_AXIS {
        let (corpus, obs_log, metrics) =
            fingerprint(profile_by_name(g.app), faults.clone(), shards);
        assert_eq!(
            (corpus, obs_log, metrics),
            (g.corpus, g.obs_log, g.metrics),
            "{} (faulted={}, shards={}) diverged from the golden artifacts",
            g.app,
            g.faulted,
            shards
        );
    }
}

#[test]
fn golden_covers_all_profiles_both_ways() {
    for app in GOLDEN_APPS.iter().copied() {
        for faulted in [false, true] {
            assert!(
                GOLDEN.iter().any(|g| g.app == app && g.faulted == faulted),
                "missing golden entry for {app} faulted={faulted}"
            );
        }
    }
}

#[test]
fn pplive_matches_pre_refactor_golden() {
    for g in GOLDEN.iter().filter(|g| g.app == "PPLive") {
        check(g);
    }
}

#[test]
fn sopcast_matches_pre_refactor_golden() {
    for g in GOLDEN.iter().filter(|g| g.app == "SopCast") {
        check(g);
    }
}

#[test]
fn tvants_matches_pre_refactor_golden() {
    for g in GOLDEN.iter().filter(|g| g.app == "TVAnts") {
        check(g);
    }
}

#[test]
fn epidemic_profiles_match_golden_and_differ() {
    for g in GOLDEN.iter().filter(|g| g.app.starts_with("Epidemic")) {
        check(g);
    }
    // The two push policies must be *distinguishable*: random-peer and
    // bandwidth-aware push produce different traffic, so every artifact
    // fingerprint differs cell-by-cell.
    for faulted in [false, true] {
        let rp = GOLDEN.iter().find(|g| g.app == "Epidemic-RP" && g.faulted == faulted).unwrap();
        let ba = GOLDEN.iter().find(|g| g.app == "Epidemic-BA" && g.faulted == faulted).unwrap();
        assert_ne!(rp.corpus, ba.corpus, "push policies indistinguishable (corpus, faulted={faulted})");
        assert_ne!(rp.obs_log, ba.obs_log, "push policies indistinguishable (obs log, faulted={faulted})");
        assert_ne!(rp.metrics, ba.metrics, "push policies indistinguishable (metrics, faulted={faulted})");
    }
}

/// Prints the golden table for the current tree. Run with
/// `--ignored --nocapture` and paste the output over `GOLDEN`.
#[test]
#[ignore = "regeneration helper, not a check"]
fn print_golden_table() {
    for app in GOLDEN_APPS.iter().copied() {
        for faulted in [false, true] {
            let faults = if faulted { fault_plan() } else { FaultPlan::none() };
            let (corpus, obs_log, metrics) = fingerprint(profile_by_name(app), faults, 1);
            println!(
                "    Golden {{ app: \"{app}\", faulted: {faulted}, corpus: \
                 0x{corpus:016x}, obs_log: 0x{obs_log:016x}, metrics: 0x{metrics:016x} }},"
            );
        }
    }
}

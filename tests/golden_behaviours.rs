//! Golden-artifact regression pin for the behaviour-layer refactor.
//!
//! The behaviour decomposition (DESIGN.md "Behaviour composition")
//! promised that same-seed runs stay **byte-identical** to the
//! pre-refactor monolithic handler. These tests pin that promise with
//! checked-in fingerprints: the corpus bytes, the obs event log, and
//! the metrics snapshot of all three paper profiles — plan-free and
//! fault-armed — hashed and compared against constants generated from
//! the last pre-refactor commit.
//!
//! The one sanctioned divergence is the per-behaviour event *naming*
//! (`swarm.handshake` → `swarm.discovery.handshake`, …): the obs log is
//! normalised back to the legacy names before hashing, so a rename is
//! invisible here while any payload/ordering drift still trips the pin.
//!
//! To regenerate after an *intentional* trace-affecting change:
//!
//! ```text
//! cargo test --test golden_behaviours -- --ignored --nocapture
//! ```
//!
//! and paste the printed table over `GOLDEN` below, saying why in the
//! commit message.

use netaware::analysis::AnalysisConfig;
use netaware::obs::RingSink;
use netaware::testbed::{run_experiment, ExperimentOptions};
use netaware::trace::write_trace;
use netaware::{AppProfile, FaultPlan, Obs};
use std::sync::Arc;

/// Behaviour-scoped target → legacy (pre-refactor) target. Applied to
/// the obs log before hashing; corpus and metrics compare raw.
const RENAMES: &[(&str, &str)] = &[
    ("swarm.discovery.handshake", "swarm.handshake"),
    ("swarm.scheduling.chunk_sched", "swarm.chunk_sched"),
    ("swarm.scheduling.chunk_expired", "swarm.chunk_expired"),
    ("swarm.scheduling.serve_refused", "swarm.serve_refused"),
    ("swarm.churn.peer_departed", "swarm.peer_departed"),
    ("swarm.churn.peer_arrived", "swarm.peer_arrived"),
    ("swarm.churn.requests_requeued", "swarm.requests_requeued"),
];

fn normalize(log: &str) -> String {
    let mut out = log.to_string();
    for (new, old) in RENAMES {
        out = out.replace(
            &format!("\"target\":\"{new}\""),
            &format!("\"target\":\"{old}\""),
        );
    }
    out
}

/// FNV-1a 64-bit: dependency-free, stable across platforms.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn options(faults: FaultPlan, obs: Obs) -> ExperimentOptions {
    ExperimentOptions {
        seed: 777,
        scale: 0.02,
        duration_us: 20_000_000,
        analysis: AnalysisConfig::default(),
        keep_traces: true,
        obs,
        faults,
    }
}

/// One observed run → (corpus hash, normalised obs-log hash, metrics hash).
fn fingerprint(profile: AppProfile, faults: FaultPlan) -> (u64, u64, u64) {
    let sink = Arc::new(RingSink::new(1 << 22));
    let obs = Obs::new(sink.clone() as Arc<dyn netaware::obs::EventSink>);
    let out = run_experiment(profile, &options(faults, obs.clone()));
    let traces = out.traces.expect("keep_traces is set");
    let mut corpus = Vec::new();
    for t in &traces.traces {
        write_trace(t, &mut corpus).expect("in-memory write");
    }
    let log: String = sink
        .snapshot()
        .iter()
        .map(|e| {
            let mut line = e.to_jsonl();
            line.push('\n');
            line
        })
        .collect();
    assert!(log.lines().count() > 50, "suspiciously small event log");
    let metrics = obs.metrics().expect("obs enabled").to_json();
    (
        fnv1a(&corpus),
        fnv1a(normalize(&log).as_bytes()),
        fnv1a(metrics.as_bytes()),
    )
}

fn fault_plan() -> FaultPlan {
    FaultPlan::from_flags(Some(0.05), Some(2_000), true)
}

struct Golden {
    app: &'static str,
    faulted: bool,
    corpus: u64,
    obs_log: u64,
    metrics: u64,
}

/// Fingerprints generated from the pre-refactor monolithic
/// `swarm/handlers.rs` (seed 777, scale 0.02, 20 s).
const GOLDEN: &[Golden] = &[
    Golden { app: "PPLive", faulted: false, corpus: 0x2929a6032aff5e61, obs_log: 0x61767a9e8fe39a0f, metrics: 0x7e0cb3336fbe691b },
    Golden { app: "PPLive", faulted: true, corpus: 0x2e1754c6b587fa25, obs_log: 0x34f51cfda370f596, metrics: 0xebfd85a66c97a02a },
    Golden { app: "SopCast", faulted: false, corpus: 0x95a50c86d8fc85cd, obs_log: 0x35567907512025e3, metrics: 0x7bd84366a38758a4 },
    Golden { app: "SopCast", faulted: true, corpus: 0x967a3930b290611f, obs_log: 0xee6e7e5739ed9888, metrics: 0x18cdef9a2b7e5d9b },
    Golden { app: "TVAnts", faulted: false, corpus: 0x3bec69ff76b09218, obs_log: 0x0ab1fc7589c904f0, metrics: 0xfa17e421b2ad9685 },
    Golden { app: "TVAnts", faulted: true, corpus: 0x69e128f369097da2, obs_log: 0x45b869d6c2c0d967, metrics: 0x4fbe82a8006505bf },
];

fn profile_by_name(name: &str) -> AppProfile {
    match name {
        "PPLive" => AppProfile::pplive(),
        "SopCast" => AppProfile::sopcast(),
        "TVAnts" => AppProfile::tvants(),
        other => panic!("unknown app {other}"),
    }
}

fn check(g: &Golden) {
    let faults = if g.faulted { fault_plan() } else { FaultPlan::none() };
    let (corpus, obs_log, metrics) = fingerprint(profile_by_name(g.app), faults);
    assert_eq!(
        (corpus, obs_log, metrics),
        (g.corpus, g.obs_log, g.metrics),
        "{} (faulted={}) diverged from the pre-refactor golden artifacts",
        g.app,
        g.faulted
    );
}

#[test]
fn golden_covers_all_paper_profiles_both_ways() {
    for app in ["PPLive", "SopCast", "TVAnts"] {
        for faulted in [false, true] {
            assert!(
                GOLDEN.iter().any(|g| g.app == app && g.faulted == faulted),
                "missing golden entry for {app} faulted={faulted}"
            );
        }
    }
}

#[test]
fn pplive_matches_pre_refactor_golden() {
    for g in GOLDEN.iter().filter(|g| g.app == "PPLive") {
        check(g);
    }
}

#[test]
fn sopcast_matches_pre_refactor_golden() {
    for g in GOLDEN.iter().filter(|g| g.app == "SopCast") {
        check(g);
    }
}

#[test]
fn tvants_matches_pre_refactor_golden() {
    for g in GOLDEN.iter().filter(|g| g.app == "TVAnts") {
        check(g);
    }
}

/// Prints the golden table for the current tree. Run with
/// `--ignored --nocapture` and paste the output over `GOLDEN`.
#[test]
#[ignore = "regeneration helper, not a check"]
fn print_golden_table() {
    for app in ["PPLive", "SopCast", "TVAnts"] {
        for faulted in [false, true] {
            let faults = if faulted { fault_plan() } else { FaultPlan::none() };
            let (corpus, obs_log, metrics) = fingerprint(profile_by_name(app), faults);
            println!(
                "    Golden {{ app: \"{app}\", faulted: {faulted}, corpus: \
                 0x{corpus:016x}, obs_log: 0x{obs_log:016x}, metrics: 0x{metrics:016x} }},"
            );
        }
    }
}

//! Integration tests for the performance-observability subsystem: the
//! determinism contract of `PerfReport` (byte-identical modulo the
//! declared wall-clock fields), and RAII span closure under panics at
//! the full-stack level.

use netaware::obs::profile::masked_diff;
use netaware::obs::{PerfMeta, PerfReport};
use netaware::testbed::{run_experiment, ExperimentOptions};
use netaware::{AppProfile, FaultPlan, Obs};

fn profiled_run(seed: u64) -> PerfReport {
    let obs = Obs::profiled();
    let opts = ExperimentOptions {
        seed,
        scale: 0.02,
        duration_us: 10_000_000,
        obs: obs.clone(),
        faults: FaultPlan::none(),
        ..Default::default()
    };
    let _ = run_experiment(AppProfile::tvants(), &opts);
    let meta = PerfMeta {
        scenario: String::from("tvants_clean"),
        toolchain: String::from("rustc integration-test"),
        seed,
        scale_permille: 20,
        sim_secs: 10,
    };
    obs.perf_report(meta).expect("profiled handle")
}

#[test]
fn same_seed_reports_are_byte_identical_modulo_masked_fields() {
    let a = profiled_run(321);
    let b = profiled_run(321);
    // Wall time, allocation counts and throughput are host observations
    // and may differ; everything else — tree shape, call counts,
    // sim-time coverage, record/event/byte tallies, the full metrics
    // snapshot — must replay exactly.
    if let Err(e) = masked_diff(&a.to_json(), &b.to_json()) {
        panic!("same-seed perf reports diverge: {e}");
    }
    // The contract is not vacuous: the unmasked tree carries real
    // deterministic workload tallies.
    let tree = &a.profile;
    let events = tree.total(|n| n.events);
    let records = tree.total(|n| n.records);
    assert!(events > 0, "no events tallied");
    assert!(records > 0, "no records tallied");
    assert_eq!(events, b.profile.total(|n| n.events));
    assert_eq!(records, b.profile.total(|n| n.records));
    // And the full stack actually appears in the tree.
    for path in [
        "testbed.run",
        "testbed.run/swarm.run/swarm.dispatch",
        "testbed.run/swarm.run/swarm.dispatch/behaviour.scheduling",
        "testbed.run/analysis.sweep",
        "testbed.run/analysis.assemble",
        "testbed.run/trace.sink",
    ] {
        assert!(tree.find(path).is_some(), "span {path} missing from tree");
    }
}

#[test]
fn different_seed_reports_differ_even_masked() {
    let a = profiled_run(321);
    let b = profiled_run(654);
    assert!(
        masked_diff(&a.to_json(), &b.to_json()).is_err(),
        "different workloads must not mask to the same report"
    );
}

#[test]
fn panicking_scope_still_closes_the_whole_stack() {
    let obs = Obs::profiled();
    let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let outer = obs.pspan("phase.outer");
        outer.add_events(1);
        let inner = obs.pspan("phase.inner");
        inner.add_events(1);
        panic!("mid-phase failure");
    }));
    assert!(caught.is_err());
    // Both guards unwound: the tree records one completed call each, at
    // the right nesting, and a fresh span opens at the root again.
    {
        let _after = obs.pspan("phase.after");
    }
    let tree = obs.profile_tree().expect("profiling");
    let outer = tree.find("phase.outer").expect("outer closed");
    assert_eq!(outer.calls, 1);
    assert_eq!(tree.find("phase.outer/phase.inner").expect("inner nested").calls, 1);
    assert_eq!(tree.find("phase.after").expect("root-level after panic").calls, 1);
}

//! Ablation A: the measured biases are caused by the selection policies,
//! not by the testbed composition — under uniform-random selection, on
//! the identical scenario, every preference collapses toward its
//! population baseline.

use netaware::testbed::{run_experiment, ExperimentOptions};
use netaware::AppProfile;

fn opts() -> ExperimentOptions {
    ExperimentOptions {
        seed: 21,
        scale: 0.04,
        duration_us: 90_000_000,
        ..Default::default()
    }
}

#[test]
fn uniform_selection_collapses_bw_bias() {
    for profile in AppProfile::paper_apps() {
        let app = profile.name.clone();
        let native = run_experiment(profile.clone(), &opts());
        let uniform = run_experiment(profile.uniform_selection(), &opts());
        let nb = native
            .analysis
            .preference("BW")
            .unwrap()
            .download_nonw
            .bytes_pct;
        let ub = uniform
            .analysis
            .preference("BW")
            .unwrap()
            .download_nonw
            .bytes_pct;
        assert!(
            nb > ub + 15.0,
            "{app}: native B'_D {nb:.1}% vs uniform {ub:.1}%"
        );
        // Under uniform selection the byte share should approach the
        // population's high-bandwidth share (~35–55%), not 95+%.
        assert!(ub < 80.0, "{app}: uniform B'_D {ub:.1}% still biased");
    }
}

#[test]
fn uniform_selection_collapses_tvants_as_bias() {
    let native = run_experiment(AppProfile::tvants(), &opts());
    let uniform = run_experiment(AppProfile::tvants().uniform_selection(), &opts());
    let na = native
        .analysis
        .preference("AS")
        .unwrap()
        .download_all
        .bytes_pct;
    let ua = uniform
        .analysis
        .preference("AS")
        .unwrap()
        .download_all
        .bytes_pct;
    assert!(na > 2.0 * ua + 2.0, "native {na:.1}% vs uniform {ua:.1}%");
}

#[test]
fn hop_stays_unbiased_in_both_arms() {
    // HOP shows no preference natively; it must not *gain* one under
    // uniform selection either (guards against artifacts in the hop
    // model itself).
    let native = run_experiment(AppProfile::sopcast(), &opts());
    let uniform = run_experiment(AppProfile::sopcast().uniform_selection(), &opts());
    for (label, out) in [("native", &native), ("uniform", &uniform)] {
        let h = out.analysis.preference("HOP").unwrap().download_nonw;
        assert!(
            (25.0..70.0).contains(&h.bytes_pct),
            "{label}: HOP B'_D = {:.1}%",
            h.bytes_pct
        );
    }
}

#[test]
fn uniform_arm_still_delivers_the_stream() {
    // The control arm must be a fair control: same stream, same health.
    let uniform = run_experiment(AppProfile::sopcast().uniform_selection(), &opts());
    assert!(
        uniform.report.continuity() > 0.85,
        "uniform arm starving: {:.3}",
        uniform.report.continuity()
    );
    let rx = uniform.analysis.summary.rx_kbps.mean;
    assert!((350.0..700.0).contains(&rx), "RX {rx:.0} kb/s");
}

#[test]
fn ablation_runner_pairs_up() {
    let mut o = opts();
    o.scale = 0.02;
    o.duration_us = 30_000_000;
    let pairs = netaware::testbed::run_ablation(&o);
    assert_eq!(pairs.len(), 3);
    for (native, uniform) in &pairs {
        assert_eq!(format!("{}-random", native.app), uniform.app);
    }
}

//! Shared fixtures for the integration tests: one paper-suite run,
//! computed once per test binary.

use netaware::testbed::{run_paper_suite, ExperimentOptions, ExperimentOutput};
use std::sync::OnceLock;

/// Options every shape test agrees on: large enough for the biases to be
/// statistically visible, small enough for CI.
pub fn suite_options() -> ExperimentOptions {
    ExperimentOptions {
        seed: 42,
        scale: 0.04,
        duration_us: 150_000_000,
        ..Default::default()
    }
}

/// The three paper applications, run once and shared.
pub fn suite() -> &'static [ExperimentOutput] {
    static SUITE: OnceLock<Vec<ExperimentOutput>> = OnceLock::new();
    SUITE.get_or_init(|| run_paper_suite(&suite_options()))
}

/// Convenience accessor by app name.
pub fn output(app: &str) -> &'static ExperimentOutput {
    suite()
        .iter()
        .find(|o| o.app == app)
        .unwrap_or_else(|| panic!("no output for {app}"))
}

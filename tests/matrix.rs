//! Determinism of the scenario-matrix runner: the cross-scenario
//! report must be byte-identical across repeat runs and shard layouts,
//! and the committed CI config must stay valid.

use netaware::testbed::{run_matrix, FaultSpec, MatrixConfig, SessionSpec};
use netaware::{ChurnPlan, LinkFaultPlan, SessionModel};

fn tiny_config() -> MatrixConfig {
    MatrixConfig {
        seed: 321,
        duration_us: 10_000_000,
        profiles: vec!["sopcast".into(), "epidemic-rp".into()],
        scales: vec![0.02],
        sessions: vec![
            SessionSpec {
                name: "baseline".into(),
                churn: Some(ChurnPlan::preset()),
                model: None,
            },
            SessionSpec {
                name: "flashcrowd".into(),
                churn: Some(ChurnPlan::preset()),
                model: Some(SessionModel::flashcrowd_preset()),
            },
        ],
        faults: vec![FaultSpec {
            name: "clean".into(),
            link: LinkFaultPlan::default(),
        }],
    }
}

#[test]
fn report_is_byte_identical_across_runs_and_shards() {
    let cfg = tiny_config();
    let serial = run_matrix(&cfg, 1, None).expect("serial run");
    let again = run_matrix(&cfg, 1, None).expect("repeat run");
    let sharded = run_matrix(&cfg, 4, None).expect("sharded run");
    assert_eq!(
        serial.to_json(),
        again.to_json(),
        "same-seed matrix reports diverged"
    );
    assert_eq!(
        serial.to_json(),
        sharded.to_json(),
        "sharded matrix report diverged from serial"
    );
    assert_eq!(serial.to_markdown(), sharded.to_markdown());
    assert_eq!(serial.cells.len(), 4);
}

#[test]
fn session_models_and_profiles_shape_the_cells() {
    let report = run_matrix(&tiny_config(), 1, None).expect("matrix runs");
    // Sweep order: profiles outermost, sessions inner.
    let labels: Vec<&str> = report.cells.iter().map(|c| c.cell.as_str()).collect();
    assert_eq!(
        labels,
        vec![
            "sopcast/x0.02/baseline/clean",
            "sopcast/x0.02/flashcrowd/clean",
            "epidemic-rp/x0.02/baseline/clean",
            "epidemic-rp/x0.02/flashcrowd/clean",
        ]
    );
    for c in &report.cells {
        assert!(c.continuity > 0.3, "{} starved", c.cell);
        assert!(c.peers_departed > 0, "{} saw no churn", c.cell);
        let pushes = c.profile.starts_with("Epidemic");
        assert_eq!(
            c.chunks_pushed > 0,
            pushes,
            "{}: pushed={} for profile {}",
            c.cell,
            c.chunks_pushed,
            c.profile
        );
    }
    // The heavy-tailed/zapping model visibly reshapes churn vs baseline.
    assert_ne!(
        report.cells[0].peers_departed, report.cells[1].peers_departed,
        "flash-crowd session model left the churn process untouched"
    );
}

#[test]
fn streamed_matrix_leaves_corpora_and_matches_in_memory() {
    let dir = std::env::temp_dir().join(format!("netaware_matrix_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut cfg = tiny_config();
    cfg.profiles = vec!["tvants".into()];
    cfg.sessions.truncate(1);
    let mem = run_matrix(&cfg, 1, None).expect("in-memory run");
    let streamed = run_matrix(&cfg, 1, Some(&dir)).expect("streamed run");
    assert_eq!(mem.to_json(), streamed.to_json());
    let cell_dir = dir.join("tvants_x0.02_baseline_clean");
    assert!(
        cell_dir.join("manifest.json").is_file(),
        "per-cell corpus missing at {}",
        cell_dir.display()
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn committed_ci_config_is_valid() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/ci/matrix-small.json");
    let body = std::fs::read_to_string(path).expect("ci/matrix-small.json readable");
    let cfg = MatrixConfig::from_json(&body).expect("ci/matrix-small.json parses and validates");
    assert_eq!(cfg.profiles.len(), 2, "CI matrix should stay small");
    assert_eq!(cfg.sessions.len(), 2);
    assert!(
        cfg.scales.iter().all(|&s| s <= 0.05),
        "CI matrix must stay scaled down"
    );
    assert!(cfg.duration_us <= 20_000_000);
}

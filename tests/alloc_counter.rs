//! Counting-allocator accuracy, pinned against a known allocation
//! pattern. This test lives alone in its own binary so the process-wide
//! counters see no concurrent test traffic, which lets the deltas be
//! asserted exactly.

use netaware::obs::alloc::{snapshot, CountingAlloc};
use netaware::sim::{Scheduler, SimTime};

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

#[test]
fn scheduler_steady_state_allocates_nothing() {
    // The calendar-queue scheduler recycles popped slots through its
    // free slab, so once the bucket wheel and slab are warm, push/pop
    // traffic must be allocation-free — an exact zero delta, not a
    // bound. This is the hot loop of every shard worker.
    // Bucket width 16 µs × 512 ring slots = an 8 192 µs window; the
    // phase below is an exact replay of the warm-up phase (same seeded
    // delay stream, started at a wheel-aligned timestamp), so every
    // ring slot sees precisely the load it was grown for.
    const WIDTH: u64 = 16;
    const WINDOW: u64 = WIDTH * 512;
    let mut s: Scheduler<u64> = Scheduler::with_granularity(WIDTH);
    let phase = |s: &mut Scheduler<u64>| {
        let mut x = 0x9e3779b97f4a7c15u64;
        for i in 0..20_000u64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            s.push(SimTime::from_us(s.now().as_us() + (x >> 40) % 5_000), i);
            if i % 2 == 0 {
                s.pop();
            }
        }
        while s.pop().is_some() {}
        // Re-align the clock to a wheel boundary so the next phase maps
        // onto the same ring slots.
        let aligned = s.now().as_us().div_ceil(WINDOW) * WINDOW;
        s.push(SimTime::from_us(aligned), u64::MAX);
        s.pop();
    };
    // Warm-up: grow the wheel and slab to the phase's exact footprint.
    phase(&mut s);

    let before = snapshot();
    phase(&mut s);
    let after = snapshot();
    assert_eq!(
        after.allocs - before.allocs,
        0,
        "steady-state scheduler traffic allocated ({} allocs, {} bytes)",
        after.allocs - before.allocs,
        after.bytes - before.bytes
    );
    assert_eq!(after.bytes - before.bytes, 0);
}

#[test]
fn counters_track_a_known_allocation_pattern_exactly() {
    assert!(netaware::obs::alloc::is_counting());
    let before = snapshot();

    // One Vec of 1000 u64 is exactly one allocation of 8000 bytes.
    let v: Vec<u64> = Vec::with_capacity(1000);
    let held = snapshot();
    assert_eq!(held.allocs - before.allocs, 1, "one allocation expected");
    assert_eq!(held.bytes - before.bytes, 8000, "8000 bytes expected");
    assert_eq!(held.live_bytes - before.live_bytes, 8000);
    assert!(held.peak_bytes >= before.live_bytes + 8000);

    // A second, differently-sized block accumulates on top.
    let w: Vec<u8> = Vec::with_capacity(512);
    let held2 = snapshot();
    assert_eq!(held2.allocs - before.allocs, 2);
    assert_eq!(held2.bytes - before.bytes, 8512);
    assert_eq!(held2.live_bytes - before.live_bytes, 8512);

    // Frees return live bytes to the starting level; the cumulative
    // counters are monotone and keep both allocations.
    drop(v);
    drop(w);
    let after = snapshot();
    assert_eq!(after.live_bytes, before.live_bytes, "frees balance");
    assert_eq!(after.allocs - before.allocs, 2);
    assert_eq!(after.bytes - before.bytes, 8512);
    assert!(after.peak_bytes >= held2.live_bytes);
}

//! Counting-allocator accuracy, pinned against a known allocation
//! pattern. This test lives alone in its own binary so the process-wide
//! counters see no concurrent test traffic, which lets the deltas be
//! asserted exactly.

use netaware::obs::alloc::{snapshot, CountingAlloc};

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

#[test]
fn counters_track_a_known_allocation_pattern_exactly() {
    assert!(netaware::obs::alloc::is_counting());
    let before = snapshot();

    // One Vec of 1000 u64 is exactly one allocation of 8000 bytes.
    let v: Vec<u64> = Vec::with_capacity(1000);
    let held = snapshot();
    assert_eq!(held.allocs - before.allocs, 1, "one allocation expected");
    assert_eq!(held.bytes - before.bytes, 8000, "8000 bytes expected");
    assert_eq!(held.live_bytes - before.live_bytes, 8000);
    assert!(held.peak_bytes >= before.live_bytes + 8000);

    // A second, differently-sized block accumulates on top.
    let w: Vec<u8> = Vec::with_capacity(512);
    let held2 = snapshot();
    assert_eq!(held2.allocs - before.allocs, 2);
    assert_eq!(held2.bytes - before.bytes, 8512);
    assert_eq!(held2.live_bytes - before.live_bytes, 8512);

    // Frees return live bytes to the starting level; the cumulative
    // counters are monotone and keep both allocations.
    drop(v);
    drop(w);
    let after = snapshot();
    assert_eq!(after.live_bytes, before.live_bytes, "frees balance");
    assert_eq!(after.allocs - before.allocs, 2);
    assert_eq!(after.bytes - before.bytes, 8512);
    assert!(after.peak_bytes >= held2.live_bytes);
}

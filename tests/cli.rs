//! Smoke tests of the `netaware-cli` binary (built by cargo and located
//! via `CARGO_BIN_EXE_netaware-cli`).

use std::process::Command;

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_netaware-cli"))
}

#[test]
fn no_args_prints_usage_and_fails() {
    let out = cli().output().expect("spawn");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));
}

#[test]
fn unknown_subcommand_fails() {
    let out = cli().arg("frobnicate").output().expect("spawn");
    assert!(!out.status.success());
}

#[test]
fn testbed_prints_table1() {
    let out = cli().arg("testbed").output().expect("spawn");
    assert!(out.status.success());
    let s = String::from_utf8_lossy(&out.stdout);
    assert!(s.contains("TABLE I"));
    assert!(s.contains("PoliTO"));
    assert!(s.contains("DSL 22/1.8"));
}

#[test]
fn run_produces_tables_and_json() {
    let json = std::env::temp_dir().join("netaware_cli_test.json");
    let out = cli()
        .args([
            "run",
            "tvants",
            "--scale",
            "0.02",
            "--secs",
            "30",
            "--seed",
            "9",
            "--json",
        ])
        .arg(&json)
        .output()
        .expect("spawn");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let s = String::from_utf8_lossy(&out.stdout);
    assert!(s.contains("TABLE IV"));
    assert!(s.contains("friendliness:"));
    let parsed: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&json).unwrap()).unwrap();
    let first = &parsed.as_seq().expect("top-level array")[0];
    let app = serde_json::value::field(first.as_map().expect("object"), "app");
    assert_eq!(app.as_str(), Some("TVAnts"));
    let _ = std::fs::remove_file(&json);
}

#[test]
fn run_rejects_unknown_app() {
    let out = cli().args(["run", "napster"]).output().expect("spawn");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown app"));
}

#[test]
fn run_obs_log_and_metrics_roundtrip() {
    let log = std::env::temp_dir().join("netaware_cli_obs.jsonl");
    let metrics = std::env::temp_dir().join("netaware_cli_metrics.json");
    let out = cli()
        .args(["run", "tvants", "--scale", "0.02", "--secs", "20", "--obs-log"])
        .arg(&log)
        .arg("--metrics")
        .arg(&metrics)
        .output()
        .expect("spawn");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("event log written"));
    assert!(err.contains("metrics snapshot written"));

    // The event log is JSONL naming every instrumented layer.
    let body = std::fs::read_to_string(&log).unwrap();
    for target in ["swarm.", "stream.", "pass."] {
        assert!(
            body.contains(&format!("\"target\":\"{target}")),
            "no {target}* events in --obs-log output"
        );
    }

    // The metrics snapshot carries protocol and analysis counters.
    let snap: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&metrics).unwrap()).unwrap();
    let counters = serde_json::value::field(snap.as_map().expect("object"), "counters");
    let requested =
        serde_json::value::field(counters.as_map().expect("counters"), "proto.chunks_requested");
    assert!(requested.as_u64().is_some_and(|n| n > 0), "no chunks requested");

    // `obs summarize` renders the same log.
    let out = cli().arg("obs").arg("summarize").arg(&log).output().expect("spawn");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let s = String::from_utf8_lossy(&out.stdout);
    assert!(s.contains("top targets:"));
    assert!(s.contains("swarm.scheduling.chunk_sched"));
    assert!(s.contains("chunk-scheduler decisions:"));

    // A truncated log (mid-line cut) must fail loudly, not summarize
    // silently short.
    let cut = body.len() - 20;
    std::fs::write(&log, &body.as_bytes()[..cut]).unwrap();
    let out = cli().arg("obs").arg("summarize").arg(&log).output().expect("spawn");
    assert!(!out.status.success(), "truncated log summarized successfully");
    assert!(String::from_utf8_lossy(&out.stderr).contains("line"));

    let _ = std::fs::remove_file(&log);
    let _ = std::fs::remove_file(&metrics);
}

#[test]
fn obs_summarize_requires_file() {
    let out = cli().args(["obs", "summarize"]).output().expect("spawn");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));
    let out = cli()
        .args(["obs", "summarize", "/nonexistent/netaware.jsonl"])
        .output()
        .expect("spawn");
    assert!(!out.status.success());
}

#[test]
fn export_then_analyze_roundtrip() {
    let dir = std::env::temp_dir().join("netaware_cli_export");
    let _ = std::fs::remove_dir_all(&dir);
    let out = cli()
        .args(["export", "--scale", "0.02", "--secs", "20", "--dir"])
        .arg(&dir)
        .output()
        .expect("spawn");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));

    // Pick one exported pcap and re-analyze it.
    let pcap = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .find(|p| p.extension().is_some_and(|x| x == "pcap"))
        .expect("an exported pcap");
    let probe = pcap.file_stem().unwrap().to_string_lossy().to_string();
    let out = cli()
        .args(["analyze", "--probe", &probe])
        .arg(&pcap)
        .output()
        .expect("spawn");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let s = String::from_utf8_lossy(&out.stdout);
    assert!(s.contains("TABLE IV"));
    assert!(s.contains("packets"));
    let _ = std::fs::remove_dir_all(&dir);
}

//! Streaming-pipeline equivalence: the disk-streaming analysis path
//! (`analyze_corpus`) must be byte-identical to the in-memory path
//! (`analyze`) on the same capture, including edge-case corpora.

use netaware::analysis::{analyze, analyze_corpus, AnalysisConfig};
use netaware::net::{GeoRegistryBuilder, Ip};
use netaware::trace::{
    CorpusSink, CorpusStream, PacketRecord, PayloadKind, ProbeTrace, RecordSink, TraceSet,
};
use std::collections::BTreeSet;
use std::path::PathBuf;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("netaware_streaming_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn rec(ts: u64, src: Ip, dst: Ip, size: u16, kind: PayloadKind) -> PacketRecord {
    PacketRecord {
        ts_us: ts,
        src,
        dst,
        sport: 4000,
        dport: 5000,
        size,
        ttl: 110,
        kind,
    }
}

/// A small but non-trivial capture: two probes, video + signaling,
/// several remotes, traffic in both directions.
fn synthetic_set() -> TraceSet {
    let p1 = Ip::from_octets(10, 0, 0, 1);
    let p2 = Ip::from_octets(10, 0, 0, 2);
    let remotes: Vec<Ip> = (0..6).map(|i| Ip::from_octets(58, 1, 0, i)).collect();
    let mut set = TraceSet::new("Synth", 10_000_000);
    for &probe in &[p1, p2] {
        let mut t = ProbeTrace::new(probe);
        for (ri, &r) in remotes.iter().enumerate() {
            for k in 0..40u64 {
                let ts = (ri as u64) * 37 + k * 150_000 + u64::from(probe.0 & 0xF);
                t.push(rec(ts, r, probe, 1250, PayloadKind::Video));
                if k % 3 == 0 {
                    t.push(rec(ts + 11, probe, r, 148, PayloadKind::Signaling));
                }
            }
        }
        set.add(t);
    }
    set.finalize();
    set
}

#[test]
fn corpus_analysis_matches_in_memory_analysis() {
    let dir = tmp_dir("equiv");
    let set = synthetic_set();
    set.write_dir(&dir).unwrap();
    let reg = GeoRegistryBuilder::new().build();
    let cfg = AnalysisConfig::default();
    let highbw = BTreeSet::new();
    let mem = analyze(&set, &reg, &cfg, &highbw);
    let streamed = analyze_corpus(&dir, &reg, &cfg, &highbw).unwrap();
    assert_eq!(streamed.to_json(), mem.to_json());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corpus_with_empty_probe_trace_streams_cleanly() {
    // A probe that captured nothing still has a manifest entry and an
    // (18-byte, zero-record) .nawt file; both paths must agree on it.
    let dir = tmp_dir("empty_probe");
    let mut set = synthetic_set();
    set.add(ProbeTrace::new(Ip::from_octets(10, 0, 0, 3)));
    set.finalize();
    set.write_dir(&dir).unwrap();
    let reg = GeoRegistryBuilder::new().build();
    let cfg = AnalysisConfig::default();
    let highbw = BTreeSet::new();
    let mem = analyze(&set, &reg, &cfg, &highbw);
    let streamed = analyze_corpus(&dir, &reg, &cfg, &highbw).unwrap();
    assert_eq!(streamed.to_json(), mem.to_json());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corpus_sink_round_trips_through_corpus_stream() {
    // CorpusSink's spill must read back record-for-record identical
    // through the streaming reader, with no whole-trace buffering.
    let dir = tmp_dir("roundtrip");
    let set = synthetic_set();
    let mut sink = CorpusSink::create(&dir).unwrap();
    for t in set.traces.clone() {
        sink.sink_probe(t).unwrap();
    }
    let manifest = sink.finish(&set.app, set.duration_us).unwrap();
    assert_eq!(manifest.total_packets, set.total_packets());

    let corpus = CorpusStream::open(&dir).unwrap();
    assert_eq!(corpus.app(), set.app);
    assert_eq!(corpus.duration_us(), set.duration_us);
    assert_eq!(corpus.probes(), &manifest.probes);
    for t in &set.traces {
        let stream = corpus.open_probe(t.probe).unwrap();
        let got: Vec<PacketRecord> = stream.map(|r| r.unwrap()).collect();
        assert_eq!(got.as_slice(), t.records());
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn streamed_records_visit_each_record_exactly_once() {
    // The manifest's packet total is enforced by analyze_corpus, and the
    // per-probe expected counts are enforced by RecordStream itself —
    // together they pin the "each record exactly once" contract.
    let dir = tmp_dir("once");
    let set = synthetic_set();
    set.write_dir(&dir).unwrap();
    let corpus = CorpusStream::open(&dir).unwrap();
    let mut total = 0usize;
    for &probe in corpus.probes() {
        let mut stream = corpus.open_probe(probe).unwrap();
        let mut n = 0usize;
        for r in stream.by_ref() {
            r.unwrap();
            n += 1;
        }
        assert_eq!(n as u64, stream.expected());
        total += n;
    }
    assert_eq!(total, corpus.total_packets());
    assert_eq!(total, set.total_packets());
    let _ = std::fs::remove_dir_all(&dir);
}

//! A custom [`Behaviour`] composes against the *public* trait surface:
//! no dispatcher edit, no state-core edit, just `Swarm::push_behaviour`.
//!
//! Two properties are pinned:
//! 1. a pure observer (no RNG draws, no actions) leaves same-seed runs
//!    byte-identical to the plain built-in stack, and
//! 2. an acting behaviour (scheduling events through `Ctx`) genuinely
//!    steers the protocol — the run diverges.

use netaware::proto::{
    Behaviour, ChunkId, Ctx, Event, NetworkEnv, PeerId, StreamParams, Swarm, SwarmConfig,
    SwarmReport,
};
use netaware::testbed::{BuiltScenario, ScenarioConfig};
use netaware::AppProfile;
use netaware::sim::SimTime;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Pure observer: tallies deliveries, touches nothing else.
struct DeliveryLedger {
    delivered: Arc<AtomicU64>,
}

impl Behaviour for DeliveryLedger {
    fn on_delivered(
        &mut self,
        _ctx: &mut Ctx,
        _to: PeerId,
        _from: PeerId,
        _chunk: ChunkId,
        _est_bps: u64,
    ) {
        self.delivered.fetch_add(1, Ordering::Relaxed);
    }
}

/// Acting behaviour: injects one extra halo contact shortly after
/// start-up, spawning a second self-rescheduling halo process on
/// probe 0.
struct ExtraHalo;

impl Behaviour for ExtraHalo {
    fn on_start(&mut self, ctx: &mut Ctx) {
        ctx.schedule(SimTime::from_ms(500), Event::Halo(0));
    }
}

fn run_with(
    behaviour: Option<Box<dyn Behaviour>>,
) -> (netaware::trace::TraceSet, SwarmReport) {
    let profile = AppProfile::sopcast();
    let scenario = BuiltScenario::build(
        &ScenarioConfig {
            seed: 4242,
            scale: 0.02,
            ..Default::default()
        },
        profile.overlay_size,
    );
    let env = NetworkEnv {
        registry: &scenario.registry,
        paths: scenario.paths,
        latency: scenario.latency,
    };
    let cfg = SwarmConfig {
        seed: 4242,
        duration_us: 10_000_000,
        stream: StreamParams::cctv1(),
        profile,
    };
    let mut swarm = Swarm::new(cfg, env, scenario.peer_setup());
    if let Some(b) = behaviour {
        swarm.push_behaviour(b);
    }
    swarm.run()
}

#[test]
fn pure_observer_is_byte_invisible() {
    let delivered = Arc::new(AtomicU64::new(0));
    let (with_obs, ra) = run_with(Some(Box::new(DeliveryLedger {
        delivered: delivered.clone(),
    })));
    let (plain, rb) = run_with(None);

    assert!(delivered.load(Ordering::Relaxed) > 0, "observer hook never fired");
    assert_eq!(
        delivered.load(Ordering::Relaxed),
        ra.chunks_delivered,
        "ledger disagrees with the ground-truth report"
    );
    assert_eq!(ra.chunks_delivered, rb.chunks_delivered);
    assert_eq!(with_obs.total_packets(), plain.total_packets());
    assert_eq!(with_obs.total_bytes(), plain.total_bytes());
    for (ta, tb) in with_obs.traces.iter().zip(&plain.traces) {
        assert_eq!(
            ta.records_unsorted(),
            tb.records_unsorted(),
            "observer behaviour perturbed probe {}",
            ta.probe
        );
    }
}

#[test]
fn acting_behaviour_steers_the_run() {
    let (modified, _) = run_with(Some(Box::new(ExtraHalo)));
    let (plain, _) = run_with(None);
    assert_ne!(
        modified.total_packets(),
        plain.total_packets(),
        "injected halo process left no trace"
    );
}

//! Cross-crate pipeline integration: simulation → trace persistence →
//! re-import → analysis must be lossless and deterministic.

use netaware::analysis::{analyze, AnalysisConfig};
use netaware::testbed::{run_experiment, BuiltScenario, ExperimentOptions, ScenarioConfig};
use netaware::trace::pcap::{export_pcap, import_pcap};
use netaware::trace::{read_trace, write_trace, ProbeTrace, TraceSet};
use netaware::AppProfile;

fn quick_opts() -> ExperimentOptions {
    ExperimentOptions {
        seed: 5,
        scale: 0.03,
        duration_us: 60_000_000,
        keep_traces: true,
        ..Default::default()
    }
}

fn run_with_traces() -> (TraceSet, BuiltScenario) {
    let profile = AppProfile::sopcast();
    let scenario = BuiltScenario::build(
        &ScenarioConfig {
            seed: 5,
            scale: 0.03,
            ..Default::default()
        },
        profile.overlay_size,
    );
    let out = netaware::testbed::run_on_scenario(profile, &scenario, &quick_opts());
    (out.traces.unwrap(), scenario)
}

#[test]
fn binary_roundtrip_preserves_analysis() {
    let (traces, scenario) = run_with_traces();
    let cfg = AnalysisConfig::default();
    let before = analyze(&traces, &scenario.registry, &cfg, &scenario.highbw_probe_ips);

    // Serialise every probe trace and read it back.
    let mut rebuilt = TraceSet::new(traces.app.clone(), traces.duration_us);
    for t in &traces.traces {
        let mut buf = Vec::new();
        write_trace(t, &mut buf).unwrap();
        rebuilt.add(read_trace(&mut buf.as_slice()).unwrap());
    }
    rebuilt.finalize();
    let after = analyze(&rebuilt, &scenario.registry, &cfg, &scenario.highbw_probe_ips);

    assert_eq!(before.total_packets, after.total_packets);
    assert_eq!(before.total_bytes, after.total_bytes);
    for (a, b) in before.preferences.iter().zip(&after.preferences) {
        assert_eq!(a.metric, b.metric);
        assert_eq!(
            a.download_all.bytes_pct.to_bits(),
            b.download_all.bytes_pct.to_bits(),
            "{} diverged across the binary format",
            a.metric
        );
    }
}

#[test]
fn pcap_roundtrip_preserves_headline_metrics() {
    let (traces, scenario) = run_with_traces();
    let cfg = AnalysisConfig::default();
    let before = analyze(&traces, &scenario.registry, &cfg, &scenario.highbw_probe_ips);

    // pcap loses the ground-truth payload tag but none of the fields the
    // analysis reads; results must be bit-identical.
    let mut rebuilt = TraceSet::new(traces.app.clone(), traces.duration_us);
    for t in &traces.traces {
        let mut buf = Vec::new();
        export_pcap(t, &mut buf).unwrap();
        let (back, skipped) = import_pcap(t.probe, &mut buf.as_slice()).unwrap();
        assert_eq!(skipped, 0);
        rebuilt.add(back);
    }
    rebuilt.finalize();
    let after = analyze(&rebuilt, &scenario.registry, &cfg, &scenario.highbw_probe_ips);

    assert_eq!(before.total_packets, after.total_packets);
    let (a, b) = (
        before.preference("BW").unwrap(),
        after.preference("BW").unwrap(),
    );
    assert_eq!(
        a.download_all.bytes_pct.to_bits(),
        b.download_all.bytes_pct.to_bits()
    );
    let (a, b) = (
        before.preference("HOP").unwrap(),
        after.preference("HOP").unwrap(),
    );
    assert_eq!(
        a.download_all.peers_pct.to_bits(),
        b.download_all.peers_pct.to_bits()
    );
}

#[test]
fn end_to_end_determinism() {
    let a = run_experiment(AppProfile::tvants(), &quick_opts());
    let b = run_experiment(AppProfile::tvants(), &quick_opts());
    assert_eq!(
        serde_json::to_string(&a.analysis).unwrap(),
        serde_json::to_string(&b.analysis).unwrap(),
        "same seed must produce bit-identical analysis"
    );
}

#[test]
fn different_seed_changes_traffic_but_not_conclusions() {
    let mut o1 = quick_opts();
    o1.keep_traces = false;
    let mut o2 = o1.clone();
    o2.seed = 6;
    let a = run_experiment(AppProfile::sopcast(), &o1);
    let b = run_experiment(AppProfile::sopcast(), &o2);
    assert_ne!(a.analysis.total_bytes, b.analysis.total_bytes);
    // Conclusions are seed-stable.
    for out in [&a, &b] {
        let bw = out.analysis.preference("BW").unwrap();
        assert!(bw.download_all.bytes_pct > 85.0);
    }
}

#[test]
fn probe_traces_only_contain_probe_touching_packets() {
    let (traces, _) = run_with_traces();
    for t in &traces.traces {
        for r in t.records_unsorted() {
            assert!(
                r.src == t.probe || r.dst == t.probe,
                "foreign packet in {}'s capture",
                t.probe
            );
        }
    }
}

#[test]
fn trace_timestamps_sorted_after_finalize() {
    let (traces, _) = run_with_traces();
    for t in &traces.traces {
        let recs = t.records_unsorted();
        assert!(
            recs.windows(2).all(|w| w[0].ts_us <= w[1].ts_us),
            "{} not time-sorted",
            t.probe
        );
    }
}

#[test]
fn json_export_round_trips() {
    let out = run_experiment(AppProfile::sopcast(), &quick_opts());
    let js = out.analysis.to_json();
    let back: netaware::ExperimentAnalysis = serde_json::from_str(&js).unwrap();
    assert_eq!(back.app, out.analysis.app);
    assert_eq!(back.total_packets, out.analysis.total_packets);
    // NaN cells must survive as nulls.
    let bw = back.preference("BW").unwrap();
    assert!(!bw.upload_all.is_measurable());
}

#[test]
fn empty_trace_set_analyzes_cleanly() {
    let set = TraceSet::new("Empty", 1_000_000);
    let scenario = BuiltScenario::build(&ScenarioConfig { seed: 1, scale: 0.01, ..Default::default() }, 100);
    let a = analyze(
        &set,
        &scenario.registry,
        &AnalysisConfig::default(),
        &scenario.highbw_probe_ips,
    );
    assert_eq!(a.total_packets, 0);
    assert!(!a.preference("BW").unwrap().download_all.is_measurable());
    assert_eq!(a.geo.total_peers, 0);
}

#[test]
fn probes_without_traffic_still_count_in_probe_set() {
    let mut set = TraceSet::new("X", 1_000_000);
    set.add(ProbeTrace::new(netaware::net::Ip::from_octets(10, 0, 0, 1)));
    set.add(ProbeTrace::new(netaware::net::Ip::from_octets(10, 0, 0, 2)));
    assert_eq!(set.probe_set().len(), 2);
}

//! Two identical runs must capture byte-identical traces.
//!
//! This is the end-to-end enforcement of the determinism contract: any
//! wall-clock read, hash-ordered iteration, or unordered parallel
//! reduction anywhere in the scenario → simulation → capture path will
//! eventually show up here as a byte diff between two same-seed runs.

use netaware::analysis::AnalysisConfig;
use netaware::obs::{Level, RingSink};
use netaware::testbed::{run_experiment, ExperimentOptions};
use netaware::trace::write_trace;
use netaware::{AppProfile, Obs};
use std::sync::Arc;

fn options() -> ExperimentOptions {
    ExperimentOptions {
        seed: 777,
        scale: 0.03,
        duration_us: 30_000_000,
        analysis: AnalysisConfig::default(),
        keep_traces: true,
        obs: netaware::Obs::default(),
    }
}

/// Serialises every probe trace of one full experiment run.
fn run_bytes() -> Vec<u8> {
    let out = run_experiment(AppProfile::pplive(), &options());
    let traces = out.traces.expect("keep_traces is set");
    let mut bytes = Vec::new();
    for t in &traces.traces {
        write_trace(t, &mut bytes).expect("in-memory write");
    }
    bytes
}

#[test]
fn same_seed_runs_are_byte_identical() {
    let a = run_bytes();
    let b = run_bytes();
    assert!(!a.is_empty(), "experiment captured no traces");
    assert_eq!(a.len(), b.len(), "trace byte lengths diverged");
    assert!(a == b, "same-seed runs produced different trace bytes");
}

/// Runs one full observed experiment and returns the serialized obs
/// artifacts: the JSONL event log and the metrics snapshot JSON.
fn observed_run(seed: u64) -> (String, String) {
    let sink = Arc::new(RingSink::new(1 << 20));
    let obs = Obs::new(sink.clone() as Arc<dyn netaware::obs::EventSink>);
    let opts = ExperimentOptions {
        seed,
        obs: obs.clone(),
        ..options()
    };
    run_experiment(AppProfile::pplive(), &opts);
    let log: String = sink
        .snapshot()
        .iter()
        .map(|e| {
            let mut line = e.to_jsonl();
            line.push('\n');
            line
        })
        .collect();
    let metrics = obs.metrics().expect("obs enabled").to_json();
    (log, metrics)
}

#[test]
fn same_seed_obs_artifacts_are_byte_identical() {
    let (log_a, metrics_a) = observed_run(777);
    let (log_b, metrics_b) = observed_run(777);
    assert!(
        log_a.lines().count() > 100,
        "event log suspiciously small: {} lines",
        log_a.lines().count()
    );
    // Every instrumented layer must appear in the log.
    for target in ["swarm.", "stream.", "pass.", "testbed."] {
        assert!(
            log_a.contains(&format!("\"target\":\"{target}")),
            "no {target}* events in the log"
        );
    }
    assert_eq!(log_a, log_b, "same-seed event logs diverged");
    assert_eq!(metrics_a, metrics_b, "same-seed metrics snapshots diverged");
    // Span timings are wall-clock and deliberately excluded from the
    // deterministic artifacts; the metrics snapshot must not leak them.
    assert!(!metrics_a.contains("elapsed_us"), "timings leaked into metrics");
}

#[test]
fn different_seed_obs_logs_diverge() {
    let (log_a, _) = observed_run(777);
    let (log_b, _) = observed_run(778);
    assert_ne!(log_a, log_b, "changing the seed changed no events");
}

#[test]
fn disabled_obs_skips_field_evaluation() {
    // The event macro must not evaluate field expressions when the
    // event is filtered out: a disabled handle sees no side effects.
    let obs = Obs::default();
    let mut evaluated = false;
    netaware::obs::event!(
        obs,
        Level::Info,
        "test.side_effect",
        netaware::sim::SimTime::ZERO,
        "x" = {
            evaluated = true;
            1u64
        },
    );
    assert!(!evaluated, "disabled obs evaluated event fields");
}

#[test]
fn different_seeds_actually_diverge() {
    // Guards against the vacuous version of the test above (e.g. the
    // seed being ignored entirely).
    let a = run_bytes();
    let out = run_experiment(
        AppProfile::pplive(),
        &ExperimentOptions {
            seed: 778,
            ..options()
        },
    );
    let traces = out.traces.expect("keep_traces is set");
    let mut b = Vec::new();
    for t in &traces.traces {
        write_trace(t, &mut b).expect("in-memory write");
    }
    assert!(a != b, "changing the seed changed nothing");
}

//! Two identical runs must capture byte-identical traces.
//!
//! This is the end-to-end enforcement of the determinism contract: any
//! wall-clock read, hash-ordered iteration, or unordered parallel
//! reduction anywhere in the scenario → simulation → capture path will
//! eventually show up here as a byte diff between two same-seed runs.

use netaware::analysis::AnalysisConfig;
use netaware::testbed::{run_experiment, ExperimentOptions};
use netaware::trace::write_trace;
use netaware::AppProfile;

fn options() -> ExperimentOptions {
    ExperimentOptions {
        seed: 777,
        scale: 0.03,
        duration_us: 30_000_000,
        analysis: AnalysisConfig::default(),
        keep_traces: true,
    }
}

/// Serialises every probe trace of one full experiment run.
fn run_bytes() -> Vec<u8> {
    let out = run_experiment(AppProfile::pplive(), &options());
    let traces = out.traces.expect("keep_traces is set");
    let mut bytes = Vec::new();
    for t in &traces.traces {
        write_trace(t, &mut bytes).expect("in-memory write");
    }
    bytes
}

#[test]
fn same_seed_runs_are_byte_identical() {
    let a = run_bytes();
    let b = run_bytes();
    assert!(!a.is_empty(), "experiment captured no traces");
    assert_eq!(a.len(), b.len(), "trace byte lengths diverged");
    assert!(a == b, "same-seed runs produced different trace bytes");
}

#[test]
fn different_seeds_actually_diverge() {
    // Guards against the vacuous version of the test above (e.g. the
    // seed being ignored entirely).
    let a = run_bytes();
    let out = run_experiment(
        AppProfile::pplive(),
        &ExperimentOptions {
            seed: 778,
            ..options()
        },
    );
    let traces = out.traces.expect("keep_traces is set");
    let mut b = Vec::new();
    for t in &traces.traces {
        write_trace(t, &mut b).expect("in-memory write");
    }
    assert!(a != b, "changing the seed changed nothing");
}

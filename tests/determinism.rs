//! Two identical runs must capture byte-identical traces.
//!
//! This is the end-to-end enforcement of the determinism contract: any
//! wall-clock read, hash-ordered iteration, or unordered parallel
//! reduction anywhere in the scenario → simulation → capture path will
//! eventually show up here as a byte diff between two same-seed runs.

use netaware::analysis::AnalysisConfig;
use netaware::obs::{Level, RingSink};
use netaware::testbed::{run_experiment, ExperimentOptions};
use netaware::trace::write_trace;
use netaware::{AppProfile, FaultPlan, Obs};
use std::sync::Arc;

fn options() -> ExperimentOptions {
    ExperimentOptions {
        seed: 777,
        scale: 0.03,
        duration_us: 30_000_000,
        analysis: AnalysisConfig::default(),
        keep_traces: true,
        obs: netaware::Obs::default(),
        faults: FaultPlan::none(),
        shards: 1,
    }
}

/// A mixed fault plan: link loss + jitter + churn, all enabled.
fn fault_plan() -> FaultPlan {
    FaultPlan::from_flags(Some(0.05), Some(2_000), true)
}

/// Serialises every probe trace of one full experiment run.
fn run_bytes_with(opts: &ExperimentOptions) -> Vec<u8> {
    let out = run_experiment(AppProfile::pplive(), opts);
    let traces = out.traces.expect("keep_traces is set");
    let mut bytes = Vec::new();
    for t in &traces.traces {
        write_trace(t, &mut bytes).expect("in-memory write");
    }
    bytes
}

fn run_bytes() -> Vec<u8> {
    run_bytes_with(&options())
}

#[test]
fn same_seed_runs_are_byte_identical() {
    let a = run_bytes();
    let b = run_bytes();
    assert!(!a.is_empty(), "experiment captured no traces");
    assert_eq!(a.len(), b.len(), "trace byte lengths diverged");
    assert!(a == b, "same-seed runs produced different trace bytes");
}

/// Runs one full observed experiment and returns the serialized obs
/// artifacts: the JSONL event log and the metrics snapshot JSON.
fn observed_run(seed: u64) -> (String, String) {
    observed_run_with(seed, FaultPlan::none())
}

fn observed_run_with(seed: u64, faults: FaultPlan) -> (String, String) {
    let sink = Arc::new(RingSink::new(1 << 20));
    let obs = Obs::new(sink.clone() as Arc<dyn netaware::obs::EventSink>);
    let opts = ExperimentOptions {
        seed,
        obs: obs.clone(),
        faults,
        ..options()
    };
    run_experiment(AppProfile::pplive(), &opts);
    let log: String = sink
        .snapshot()
        .iter()
        .map(|e| {
            let mut line = e.to_jsonl();
            line.push('\n');
            line
        })
        .collect();
    let metrics = obs.metrics().expect("obs enabled").to_json();
    (log, metrics)
}

#[test]
fn same_seed_obs_artifacts_are_byte_identical() {
    let (log_a, metrics_a) = observed_run(777);
    let (log_b, metrics_b) = observed_run(777);
    assert!(
        log_a.lines().count() > 100,
        "event log suspiciously small: {} lines",
        log_a.lines().count()
    );
    // Every instrumented layer must appear in the log.
    for target in ["swarm.", "stream.", "pass.", "testbed."] {
        assert!(
            log_a.contains(&format!("\"target\":\"{target}")),
            "no {target}* events in the log"
        );
    }
    assert_eq!(log_a, log_b, "same-seed event logs diverged");
    assert_eq!(metrics_a, metrics_b, "same-seed metrics snapshots diverged");
    // Span timings are wall-clock and deliberately excluded from the
    // deterministic artifacts; the metrics snapshot must not leak them.
    assert!(!metrics_a.contains("elapsed_us"), "timings leaked into metrics");
}

#[test]
fn different_seed_obs_logs_diverge() {
    let (log_a, _) = observed_run(777);
    let (log_b, _) = observed_run(778);
    assert_ne!(log_a, log_b, "changing the seed changed no events");
}

#[test]
fn disabled_obs_skips_field_evaluation() {
    // The event macro must not evaluate field expressions when the
    // event is filtered out: a disabled handle sees no side effects.
    let obs = Obs::default();
    let mut evaluated = false;
    netaware::obs::event!(
        obs,
        Level::Info,
        "test.side_effect",
        netaware::sim::SimTime::ZERO,
        "x" = {
            evaluated = true;
            1u64
        },
    );
    assert!(!evaluated, "disabled obs evaluated event fields");
}

#[test]
fn different_seeds_actually_diverge() {
    // Guards against the vacuous version of the test above (e.g. the
    // seed being ignored entirely).
    let a = run_bytes();
    let out = run_experiment(
        AppProfile::pplive(),
        &ExperimentOptions {
            seed: 778,
            ..options()
        },
    );
    let traces = out.traces.expect("keep_traces is set");
    let mut b = Vec::new();
    for t in &traces.traces {
        write_trace(t, &mut b).expect("in-memory write");
    }
    assert!(a != b, "changing the seed changed nothing");
}

#[test]
fn same_seed_fault_runs_are_byte_identical() {
    // The whole determinism contract must survive with every fault
    // class armed: loss coins, jitter draws, outage renewals, churn
    // arrivals/departures and the recovery machinery all ride seeded
    // streams, so two same-seed fault runs are still byte-identical.
    let opts = ExperimentOptions {
        faults: fault_plan(),
        ..options()
    };
    let a = run_bytes_with(&opts);
    let b = run_bytes_with(&opts);
    assert!(!a.is_empty(), "fault run captured no traces");
    assert!(a == b, "same-seed fault runs produced different trace bytes");
    // And faults must actually perturb the run vs the clean baseline.
    assert!(a != run_bytes(), "armed fault plan changed nothing");
}

#[test]
fn same_seed_fault_obs_artifacts_are_byte_identical() {
    let (log_a, metrics_a) = observed_run_with(777, fault_plan());
    let (log_b, metrics_b) = observed_run_with(777, fault_plan());
    assert_eq!(log_a, log_b, "same-seed fault event logs diverged");
    assert_eq!(metrics_a, metrics_b, "same-seed fault metrics diverged");
    // Churn and continuity must be visible in the artifacts.
    assert!(
        log_a.contains("\"target\":\"swarm.churn.peer_departed\""),
        "no churn events in the log"
    );
    assert!(
        log_a.contains("\"target\":\"swarm.continuity\""),
        "no continuity events in the log"
    );
    assert!(metrics_a.contains("proto.peers_departed"), "no churn metric");
}

#[test]
fn noop_fault_plan_matches_fault_free_baseline() {
    // `FaultPlan::none()` consumes zero RNG draws and installs nothing:
    // options() already attaches it, so comparing against an explicitly
    // constructed plan-free ExperimentOptions would be vacuous — instead
    // check the no-op plan against a *disabled but present* link config.
    let noop_via_flags = ExperimentOptions {
        faults: FaultPlan::from_flags(None, None, false),
        ..options()
    };
    assert!(noop_via_flags.faults.is_noop());
    assert!(
        run_bytes() == run_bytes_with(&noop_via_flags),
        "no-op fault plan perturbed the run"
    );
}

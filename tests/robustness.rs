//! Robustness experiments: the analysis conclusions must not hinge on
//! arbitrary testbed composition choices or on middlebox luck.

use netaware::testbed::{run_on_scenario, BuiltScenario, ExperimentOptions, ScenarioConfig};
use netaware::AppProfile;

fn opts(seed: u64) -> ExperimentOptions {
    ExperimentOptions {
        seed,
        scale: 0.04,
        duration_us: 90_000_000,
        ..Default::default()
    }
}

fn run_with_cn(cn_fraction: f64, profile: AppProfile, seed: u64) -> netaware::testbed::ExperimentOutput {
    let scenario = BuiltScenario::build(
        &ScenarioConfig {
            seed,
            scale: 0.04,
            cn_fraction,
        },
        profile.overlay_size,
    );
    run_on_scenario(profile, &scenario, &opts(seed))
}

#[test]
fn bw_conclusion_robust_to_population_composition() {
    // Squeeze the audience geography from CN-dominant to EU-heavy: the
    // BW inference is about capacity, not geography, and must hold.
    for cn in [0.60, 0.87, 0.95] {
        let out = run_with_cn(cn, AppProfile::sopcast(), 31);
        let bw = out.analysis.preference("BW").unwrap();
        assert!(
            bw.download_all.bytes_pct > 90.0,
            "cn={cn}: B_D(BW) = {:.1}%",
            bw.download_all.bytes_pct
        );
        assert!(out.report.continuity() > 0.9);
    }
}

#[test]
fn as_awareness_grows_with_local_population() {
    // More European peers means more same-AS *external* candidates for
    // TVAnts to exploit. The all-contributor AS share is dominated by
    // probe↔probe traffic and barely moves, but the probe-excluded
    // (primed) peer share isolates the externals and must respond:
    // opportunity-weighted preference, not a profile constant.
    let low = run_with_cn(0.95, AppProfile::tvants(), 33);
    let high = run_with_cn(0.60, AppProfile::tvants(), 33);
    let p_low = low.analysis.preference("AS").unwrap().download_nonw.peers_pct;
    let p_high = high.analysis.preference("AS").unwrap().download_nonw.peers_pct;
    assert!(
        p_high > p_low,
        "P'_D(AS) with many EU peers {p_high:.2}% must exceed CN-saturated {p_low:.2}%"
    );
}

#[test]
fn sopcast_stays_location_blind_regardless_of_composition() {
    // SopCast's P≈B signature (no AS preference) must survive a
    // EU-heavy population — otherwise the metric would be confusing
    // opportunity with preference.
    let out = run_with_cn(0.60, AppProfile::sopcast(), 35);
    let a = out.analysis.preference("AS").unwrap();
    let ratio = a.download_nonw.bytes_pct / a.download_nonw.peers_pct.max(0.1);
    assert!(
        (0.2..5.0).contains(&ratio),
        "B'/P' = {:.2} suggests spurious AS preference",
        ratio
    );
}

#[test]
fn firewalled_probes_upload_less() {
    // ENST's LAN probes sit behind a firewall: external demand cannot
    // reach them as easily, so their TX volume must lag the open LAN
    // probes' — Table I's middlebox column has observable consequences.
    let profile = AppProfile::pplive();
    let scenario = BuiltScenario::build(
        &ScenarioConfig {
            seed: 11,
            scale: 0.04,
            ..Default::default()
        },
        profile.overlay_size,
    );
    let mut o = opts(11);
    o.keep_traces = true;
    let out = run_on_scenario(profile, &scenario, &o);
    let traces = out.traces.unwrap();

    let tx_of = |site: &str| -> f64 {
        let ips: Vec<_> = scenario
            .probes
            .iter()
            .zip(&scenario.probe_hosts)
            .filter(|(_, h)| h.site == site && !h.home)
            .map(|(p, _)| p.ip)
            .collect();
        let total: u64 = traces
            .traces
            .iter()
            .filter(|t| ips.contains(&t.probe))
            .map(|t| {
                t.records_unsorted()
                    .iter()
                    .filter(|r| r.src == t.probe)
                    .map(|r| r.size as u64)
                    .sum::<u64>()
            })
            .sum();
        total as f64 / ips.len() as f64
    };
    let enst = tx_of("ENST"); // firewalled LANs
    let wut = tx_of("WUT"); // open LANs
    assert!(
        enst < 0.6 * wut,
        "firewalled ENST {enst:.0} B/probe vs open WUT {wut:.0} B/probe"
    );
}

#[test]
fn nat_probes_upload_less_than_open_ones() {
    let profile = AppProfile::pplive();
    let scenario = BuiltScenario::build(
        &ScenarioConfig {
            seed: 13,
            scale: 0.04,
            ..Default::default()
        },
        profile.overlay_size,
    );
    let mut o = opts(13);
    o.keep_traces = true;
    let out = run_on_scenario(profile, &scenario, &o);
    let traces = out.traces.unwrap();

    // UniTN hosts 6–7 are NATted LANs; 1–5 are open LANs at the same site.
    let tx_of = |nat: bool| -> f64 {
        let ips: Vec<_> = scenario
            .probes
            .iter()
            .zip(&scenario.probe_hosts)
            .filter(|(_, h)| h.site == "UniTN" && !h.home && h.nat == nat)
            .map(|(p, _)| p.ip)
            .collect();
        assert!(!ips.is_empty());
        let total: u64 = traces
            .traces
            .iter()
            .filter(|t| ips.contains(&t.probe))
            .map(|t| {
                t.records_unsorted()
                    .iter()
                    .filter(|r| r.src == t.probe)
                    .map(|r| r.size as u64)
                    .sum::<u64>()
            })
            .sum();
        total as f64 / ips.len() as f64
    };
    let natted = tx_of(true);
    let open = tx_of(false);
    assert!(
        natted < open,
        "NATted UniTN probes {natted:.0} B vs open {open:.0} B"
    );
}

//! Cross-crate randomized tests: invariants of the trace → flow →
//! preference pipeline under arbitrary (but well-formed) packet inputs,
//! driven by a seeded [`DetRng`] so every run explores the same cases.

use netaware::analysis::flows::aggregate_probe;
use netaware::analysis::partition::Metric;
use netaware::analysis::preference::{preference, Dir};
use netaware::analysis::AnalysisConfig;
use netaware::net::{AsId, AsInfo, AsKind, CountryCode, GeoRegistry, GeoRegistryBuilder, Ip, Prefix};
use netaware::sim::DetRng;
use netaware::trace::{PacketRecord, PayloadKind, ProbeTrace};

const PROBE: Ip = Ip(0x0A00_0001);
const CASES: usize = 64;

fn registry() -> GeoRegistry {
    let mut b = GeoRegistryBuilder::new();
    b.register_as(AsInfo::new(1, CountryCode::IT, AsKind::Academic, "HOME"));
    b.register_as(AsInfo::new(2, CountryCode::CN, AsKind::Carrier, "FAR"));
    b.announce(Prefix::of(Ip(0x0A00_0000), 16), AsId(1)).unwrap();
    b.announce(Prefix::of(Ip(0x3A00_0000), 8), AsId(2)).unwrap();
    b.build()
}

/// A packet touching the probe, with a remote drawn from a small pool so
/// flows accumulate.
fn arb_record(rng: &mut DetRng) -> PacketRecord {
    let remote_idx: u32 = rng.range(0..12u32);
    let remote = if rng.chance(0.5) {
        Ip(0x3A00_0100 + remote_idx) // CN space
    } else {
        Ip(0x0A00_0100 + remote_idx) // probe's AS
    };
    let rx = rng.chance(0.5);
    let (src, dst) = if rx { (remote, PROBE) } else { (PROBE, remote) };
    let size: u16 = rng.range(56..1400u32) as u16;
    let ttl: u8 = rng.range(90..=128u32) as u8;
    PacketRecord {
        ts_us: rng.range(0..600_000_000u64),
        src,
        dst,
        sport: 1,
        dport: 2,
        size,
        ttl: if rx { ttl } else { 128 },
        kind: if size >= 400 {
            PayloadKind::Video
        } else {
            PayloadKind::Signaling
        },
    }
}

fn arb_records(rng: &mut DetRng, max_len: usize) -> Vec<PacketRecord> {
    let n = rng.range(0..max_len);
    (0..n).map(|_| arb_record(rng)).collect()
}

fn trace_from(records: Vec<PacketRecord>) -> ProbeTrace {
    ProbeTrace::from_records(PROBE, records)
}

/// Flow aggregation conserves packets and bytes exactly.
#[test]
fn aggregation_conserves_totals() {
    let mut rng = DetRng::stream(0xAB1E, "pipeline/aggregation_conserves");
    for _ in 0..CASES {
        let records = arb_records(&mut rng, 400);
        let trace = trace_from(records.clone());
        let cfg = AnalysisConfig::default();
        let flows = aggregate_probe(&trace, &cfg);
        let total_pkts: u64 = flows.flows.values().map(|f| f.pkts_rx + f.pkts_tx).sum();
        let total_bytes: u64 = flows.flows.values().map(|f| f.bytes_rx + f.bytes_tx).sum();
        assert_eq!(total_pkts, records.len() as u64);
        assert_eq!(total_bytes, records.iter().map(|r| r.size as u64).sum::<u64>());
        // Video subsets never exceed totals.
        for f in flows.flows.values() {
            assert!(f.video_bytes_rx <= f.bytes_rx);
            assert!(f.video_bytes_tx <= f.bytes_tx);
            assert!(f.video_pkts_rx <= f.pkts_rx);
        }
    }
}

/// min IPG is a true minimum: no adjacent received-video pair of the same
/// remote is closer than the reported value.
#[test]
fn min_ipg_is_minimal() {
    let mut rng = DetRng::stream(0xAB1E, "pipeline/min_ipg");
    for _ in 0..CASES {
        let trace = trace_from(arb_records(&mut rng, 400));
        let cfg = AnalysisConfig::default();
        let flows = aggregate_probe(&trace, &cfg);
        for (remote, f) in &flows.flows {
            let ts: Vec<u64> = trace
                .records_unsorted()
                .iter()
                .filter(|r| {
                    r.src == *remote && r.dst == PROBE && r.size >= cfg.video_size_threshold
                })
                .map(|r| r.ts_us)
                .collect();
            let true_min = ts.windows(2).map(|w| w[1] - w[0]).min();
            assert_eq!(f.min_ipg_us, true_min, "remote {remote}");
        }
    }
}

/// Preference percentages are bounded and the preferred/complement split
/// partitions the measurable set.
#[test]
fn preference_is_a_partition() {
    let mut rng = DetRng::stream(0xAB1E, "pipeline/preference_partition");
    for _ in 0..CASES {
        let trace = trace_from(arb_records(&mut rng, 400));
        let cfg = AnalysisConfig::default();
        let reg = registry();
        let flows = vec![aggregate_probe(&trace, &cfg)];
        for metric in Metric::ALL {
            for dir in [Dir::Download, Dir::Upload] {
                let v = preference(&flows, &reg, &cfg, 19, metric, dir, None);
                if v.is_measurable() {
                    assert!(
                        (0.0..=100.0).contains(&v.peers_pct),
                        "{} {:?}",
                        metric.name(),
                        dir
                    );
                    if !v.bytes_pct.is_nan() {
                        assert!((0.0..=100.0).contains(&v.bytes_pct));
                    }
                }
            }
        }
    }
}

/// Excluding the (empty) probe set is a no-op; excluding everything
/// empties the measurement.
#[test]
fn exclusion_set_monotonicity() {
    let mut rng = DetRng::stream(0xAB1E, "pipeline/exclusion_monotone");
    for _ in 0..CASES {
        let trace = trace_from(arb_records(&mut rng, 300));
        let cfg = AnalysisConfig::default();
        let reg = registry();
        let flows = vec![aggregate_probe(&trace, &cfg)];
        let empty = std::collections::BTreeSet::new();
        let everything: std::collections::BTreeSet<Ip> = flows[0].flows.keys().copied().collect();
        let base = preference(&flows, &reg, &cfg, 19, Metric::Net, Dir::Download, None);
        let with_empty =
            preference(&flows, &reg, &cfg, 19, Metric::Net, Dir::Download, Some(&empty));
        assert_eq!(base.is_measurable(), with_empty.is_measurable());
        if base.is_measurable() {
            assert_eq!(base.peers_pct.to_bits(), with_empty.peers_pct.to_bits());
        }
        let none_left =
            preference(&flows, &reg, &cfg, 19, Metric::Net, Dir::Download, Some(&everything));
        assert!(!none_left.is_measurable());
    }
}

/// The whole trace-set survives binary serialisation bit-for-bit.
#[test]
fn format_roundtrip() {
    let mut rng = DetRng::stream(0xAB1E, "pipeline/format_roundtrip");
    for _ in 0..CASES {
        let trace = trace_from(arb_records(&mut rng, 300));
        let mut buf = Vec::new();
        netaware::trace::write_trace(&trace, &mut buf).unwrap();
        let back = netaware::trace::read_trace(&mut buf.as_slice()).unwrap();
        assert_eq!(back.probe, trace.probe);
        assert_eq!(back.records_unsorted(), trace.records_unsorted());
    }
}

/// pcap export/import preserves every analysis-relevant field.
#[test]
fn pcap_roundtrip() {
    let mut rng = DetRng::stream(0xAB1E, "pipeline/pcap_roundtrip");
    for _ in 0..CASES {
        let trace = trace_from(arb_records(&mut rng, 200));
        let mut buf = Vec::new();
        netaware::trace::pcap::export_pcap(&trace, &mut buf).unwrap();
        let (back, skipped) =
            netaware::trace::pcap::import_pcap(trace.probe, &mut buf.as_slice()).unwrap();
        assert_eq!(skipped, 0);
        assert_eq!(back.len(), trace.len());
        for (a, b) in back.records_unsorted().iter().zip(trace.records_unsorted()) {
            assert_eq!(a.ts_us, b.ts_us);
            assert_eq!(a.src, b.src);
            assert_eq!(a.dst, b.dst);
            assert_eq!(a.size.max(28), b.size.max(28)); // headers floor tiny sizes
            assert_eq!(a.ttl, b.ttl);
        }
    }
}

/// Geo breakdown percentages always sum to ~100 (or are all zero).
#[test]
fn geo_shares_sum_to_hundred() {
    let mut rng = DetRng::stream(0xAB1E, "pipeline/geo_shares");
    for _ in 0..CASES {
        let mut records = arb_records(&mut rng, 300);
        if records.is_empty() {
            records.push(arb_record(&mut rng));
        }
        let trace = trace_from(records);
        let cfg = AnalysisConfig::default();
        let reg = registry();
        let flows = vec![aggregate_probe(&trace, &cfg)];
        let g = netaware::analysis::geo::geo_breakdown(&flows, &reg);
        let peer_sum: f64 = g.rows.iter().map(|r| r.peers_pct).sum();
        assert!((peer_sum - 100.0).abs() < 1e-6, "sum {peer_sum}");
    }
}

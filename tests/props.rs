//! Cross-crate property tests: invariants of the trace → flow →
//! preference pipeline under arbitrary (but well-formed) packet inputs.

use netaware::analysis::flows::aggregate_probe;
use netaware::analysis::partition::Metric;
use netaware::analysis::preference::{preference, Dir};
use netaware::analysis::AnalysisConfig;
use netaware::net::{AsId, AsInfo, AsKind, CountryCode, GeoRegistry, GeoRegistryBuilder, Ip, Prefix};
use netaware::trace::{PacketRecord, PayloadKind, ProbeTrace};
use proptest::prelude::*;

const PROBE: Ip = Ip(0x0A00_0001);

fn registry() -> GeoRegistry {
    let mut b = GeoRegistryBuilder::new();
    b.register_as(AsInfo::new(1, CountryCode::IT, AsKind::Academic, "HOME"));
    b.register_as(AsInfo::new(2, CountryCode::CN, AsKind::Carrier, "FAR"));
    b.announce(Prefix::of(Ip(0x0A00_0000), 16), AsId(1)).unwrap();
    b.announce(Prefix::of(Ip(0x3A00_0000), 8), AsId(2)).unwrap();
    b.build()
}

prop_compose! {
    /// A packet touching the probe, with a remote drawn from a small pool
    /// so flows accumulate.
    fn arb_record()(
        ts in 0u64..600_000_000,
        remote_idx in 0u32..12,
        remote_space in prop::bool::ANY,
        rx in prop::bool::ANY,
        size in 56u16..1400,
        ttl in 90u8..=128,
    ) -> PacketRecord {
        let remote = if remote_space {
            Ip(0x3A00_0100 + remote_idx) // CN space
        } else {
            Ip(0x0A00_0100 + remote_idx) // probe's AS
        };
        let (src, dst) = if rx { (remote, PROBE) } else { (PROBE, remote) };
        PacketRecord {
            ts_us: ts,
            src,
            dst,
            sport: 1,
            dport: 2,
            size,
            ttl: if rx { ttl } else { 128 },
            kind: if size >= 400 { PayloadKind::Video } else { PayloadKind::Signaling },
        }
    }
}

fn trace_from(records: Vec<PacketRecord>) -> ProbeTrace {
    ProbeTrace::from_records(PROBE, records)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Flow aggregation conserves packets and bytes exactly.
    #[test]
    fn aggregation_conserves_totals(records in prop::collection::vec(arb_record(), 0..400)) {
        let trace = trace_from(records.clone());
        let cfg = AnalysisConfig::default();
        let flows = aggregate_probe(&trace, &cfg);
        let total_pkts: u64 = flows.flows.values().map(|f| f.pkts_rx + f.pkts_tx).sum();
        let total_bytes: u64 = flows.flows.values().map(|f| f.bytes_rx + f.bytes_tx).sum();
        prop_assert_eq!(total_pkts, records.len() as u64);
        prop_assert_eq!(total_bytes, records.iter().map(|r| r.size as u64).sum::<u64>());
        // Video subsets never exceed totals.
        for f in flows.flows.values() {
            prop_assert!(f.video_bytes_rx <= f.bytes_rx);
            prop_assert!(f.video_bytes_tx <= f.bytes_tx);
            prop_assert!(f.video_pkts_rx <= f.pkts_rx);
        }
    }

    /// min IPG is a true minimum: no adjacent received-video pair of the
    /// same remote is closer than the reported value.
    #[test]
    fn min_ipg_is_minimal(records in prop::collection::vec(arb_record(), 0..400)) {
        let trace = trace_from(records);
        let cfg = AnalysisConfig::default();
        let flows = aggregate_probe(&trace, &cfg);
        for (remote, f) in &flows.flows {
            let ts: Vec<u64> = trace
                .records_unsorted()
                .iter()
                .filter(|r| r.src == *remote && r.dst == PROBE && r.size >= cfg.video_size_threshold)
                .map(|r| r.ts_us)
                .collect();
            let true_min = ts.windows(2).map(|w| w[1] - w[0]).min();
            prop_assert_eq!(f.min_ipg_us, true_min, "remote {}", remote);
        }
    }

    /// Preference percentages are bounded and the preferred/complement
    /// split partitions the measurable set.
    #[test]
    fn preference_is_a_partition(records in prop::collection::vec(arb_record(), 0..400)) {
        let trace = trace_from(records);
        let cfg = AnalysisConfig::default();
        let reg = registry();
        let flows = vec![aggregate_probe(&trace, &cfg)];
        for metric in Metric::ALL {
            for dir in [Dir::Download, Dir::Upload] {
                let v = preference(&flows, &reg, &cfg, 19, metric, dir, None);
                if v.is_measurable() {
                    prop_assert!((0.0..=100.0).contains(&v.peers_pct), "{} {:?}", metric.name(), dir);
                    if !v.bytes_pct.is_nan() {
                        prop_assert!((0.0..=100.0).contains(&v.bytes_pct));
                    }
                }
            }
        }
    }

    /// Excluding the (empty) probe set is a no-op; excluding everything
    /// empties the measurement.
    #[test]
    fn exclusion_set_monotonicity(records in prop::collection::vec(arb_record(), 0..300)) {
        let trace = trace_from(records);
        let cfg = AnalysisConfig::default();
        let reg = registry();
        let flows = vec![aggregate_probe(&trace, &cfg)];
        let empty = std::collections::BTreeSet::new();
        let everything: std::collections::BTreeSet<Ip> =
            flows[0].flows.keys().copied().collect();
        let base = preference(&flows, &reg, &cfg, 19, Metric::Net, Dir::Download, None);
        let with_empty = preference(&flows, &reg, &cfg, 19, Metric::Net, Dir::Download, Some(&empty));
        prop_assert_eq!(base.is_measurable(), with_empty.is_measurable());
        if base.is_measurable() {
            prop_assert_eq!(base.peers_pct.to_bits(), with_empty.peers_pct.to_bits());
        }
        let none_left = preference(&flows, &reg, &cfg, 19, Metric::Net, Dir::Download, Some(&everything));
        prop_assert!(!none_left.is_measurable());
    }

    /// The whole trace-set survives binary serialisation bit-for-bit.
    #[test]
    fn format_roundtrip(records in prop::collection::vec(arb_record(), 0..300)) {
        let trace = trace_from(records);
        let mut buf = Vec::new();
        netaware::trace::write_trace(&trace, &mut buf).unwrap();
        let back = netaware::trace::read_trace(&mut buf.as_slice()).unwrap();
        prop_assert_eq!(back.probe, trace.probe);
        prop_assert_eq!(back.records_unsorted(), trace.records_unsorted());
    }

    /// pcap export/import preserves every analysis-relevant field.
    #[test]
    fn pcap_roundtrip(records in prop::collection::vec(arb_record(), 0..200)) {
        let trace = trace_from(records);
        let mut buf = Vec::new();
        netaware::trace::pcap::export_pcap(&trace, &mut buf).unwrap();
        let (back, skipped) =
            netaware::trace::pcap::import_pcap(trace.probe, &mut buf.as_slice()).unwrap();
        prop_assert_eq!(skipped, 0);
        prop_assert_eq!(back.len(), trace.len());
        for (a, b) in back.records_unsorted().iter().zip(trace.records_unsorted()) {
            prop_assert_eq!(a.ts_us, b.ts_us);
            prop_assert_eq!(a.src, b.src);
            prop_assert_eq!(a.dst, b.dst);
            prop_assert_eq!(a.size.max(28), b.size.max(28)); // headers floor tiny sizes
            prop_assert_eq!(a.ttl, b.ttl);
        }
    }

    /// Geo breakdown percentages always sum to ~100 (or are all zero).
    #[test]
    fn geo_shares_sum_to_hundred(records in prop::collection::vec(arb_record(), 1..300)) {
        let trace = trace_from(records);
        let cfg = AnalysisConfig::default();
        let reg = registry();
        let flows = vec![aggregate_probe(&trace, &cfg)];
        let g = netaware::analysis::geo::geo_breakdown(&flows, &reg);
        let peer_sum: f64 = g.rows.iter().map(|r| r.peers_pct).sum();
        prop_assert!((peer_sum - 100.0).abs() < 1e-6, "sum {peer_sum}");
    }
}

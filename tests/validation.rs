//! Grading the passive inferences against simulator ground truth: the
//! analysis must *infer* correctly, not just produce plausible numbers.

use netaware::analysis::flows::aggregate;
use netaware::analysis::hopdist::hop_distribution;
use netaware::analysis::validation::validate_bw;
use netaware::analysis::AnalysisConfig;
use netaware::testbed::{run_on_scenario, BuiltScenario, ExperimentOptions, ScenarioConfig};
use netaware::AppProfile;

fn run(profile: AppProfile, seed: u64) -> (BuiltScenario, netaware::trace::TraceSet) {
    let scenario = BuiltScenario::build(
        &ScenarioConfig { seed, scale: 0.04, ..Default::default() },
        profile.overlay_size,
    );
    let opts = ExperimentOptions {
        seed,
        scale: 0.04,
        duration_us: 90_000_000,
        keep_traces: true,
        ..Default::default()
    };
    let out = run_on_scenario(profile, &scenario, &opts);
    (scenario, out.traces.unwrap())
}

#[test]
fn bw_inference_is_accurate_for_every_profile() {
    for profile in AppProfile::paper_apps() {
        let app = profile.name.clone();
        let (scenario, traces) = run(profile, 3);
        let cfg = AnalysisConfig::default();
        let pfs = aggregate(&traces, &cfg);
        let v = validate_bw(&pfs, &cfg, &scenario.ground_truth());
        assert!(
            v.accuracy() > 0.97,
            "{app}: BW accuracy {:.3} ({:?})",
            v.accuracy(),
            v
        );
        assert!(
            v.coverage() > 0.95,
            "{app}: BW coverage {:.3}",
            v.coverage()
        );
    }
}

#[test]
fn bw_inference_accurate_under_uniform_selection_too() {
    // The uniform arm stresses the classifier with overloaded low-bw
    // providers — the regime where a naive queueing model produced
    // false highs during development.
    let (scenario, traces) = run(AppProfile::sopcast().uniform_selection(), 21);
    let cfg = AnalysisConfig::default();
    let pfs = aggregate(&traces, &cfg);
    let v = validate_bw(&pfs, &cfg, &scenario.ground_truth());
    // Near-threshold senders (e.g. 8 Mb/s uplinks) can read high through
    // an interleaving modem — the same artifact that fooled real
    // packet-pair probes. Anything beyond a fraction of a percent would
    // indicate a timing-model bug.
    let classified = v.true_high + v.true_low + v.false_high + v.false_low;
    assert!(
        (v.false_high as f64) < 0.005 * classified as f64,
        "systematic false highs: {v:?}"
    );
    assert!(v.accuracy() > 0.97, "accuracy {:.3}", v.accuracy());
}

#[test]
fn hop_median_lands_in_the_papers_band() {
    // §III-B: "the actual HOP median ranges from 18 to 20 depending on
    // the application".
    for profile in AppProfile::paper_apps() {
        let app = profile.name.clone();
        let (_, traces) = run(profile, 5);
        let cfg = AnalysisConfig::default();
        let pfs = aggregate(&traces, &cfg);
        let d = hop_distribution(&pfs, &cfg, 19);
        let median = d.median.expect("measurable hop distribution");
        assert!(
            (14..=24).contains(&median),
            "{app}: hop median {median} (distribution {:?})",
            &d.counts[..30]
        );
        assert!(d.measurable > 50, "{app}: only {} measurable flows", d.measurable);
    }
}

#[test]
fn hop_threshold_splits_roughly_in_half_for_blind_apps() {
    // For a location-blind app the 19-hop split should leave a sizeable
    // share on both sides (the paper: "approximately 50% of the peers
    // falls in the preferential class").
    let (_, traces) = run(AppProfile::sopcast(), 7);
    let cfg = AnalysisConfig::default();
    let pfs = aggregate(&traces, &cfg);
    let d = hop_distribution(&pfs, &cfg, 19);
    assert!(
        (20.0..80.0).contains(&d.below_threshold_pct),
        "split {:.1}%",
        d.below_threshold_pct
    );
}

#[test]
fn ground_truth_census_is_consistent() {
    let scenario = BuiltScenario::build(&ScenarioConfig { seed: 1, scale: 0.05, ..Default::default() }, 4_000);
    let t = scenario.ground_truth();
    // The source and the 39 LAN probes are high-bandwidth.
    assert!(t.high_bw.contains(&scenario.source.ip));
    for ip in &scenario.highbw_probe_ips {
        assert!(t.high_bw.contains(ip));
    }
    // Home probes have narrow downlinks (≤10 Mb/s) except ENST's 22 Mb/s line.
    assert!(!t.narrow_probes.is_empty());
    for ip in &t.narrow_probes {
        assert!(!scenario.highbw_probe_ips.contains(ip));
    }
    // A plausible population share is high-bandwidth.
    let ext_high = scenario
        .externals
        .iter()
        .filter(|e| t.high_bw.contains(&e.ip))
        .count();
    let share = ext_high as f64 / scenario.externals.len() as f64;
    assert!((0.25..0.55).contains(&share), "high-bw share {share:.2}");
}

#[test]
fn bw_preference_is_significant_by_probe_bootstrap() {
    use netaware::analysis::confidence::bootstrap_bytes_ci;
    use netaware::analysis::partition::Metric;
    use netaware::analysis::preference::Dir;

    let (scenario, traces) = run(AppProfile::sopcast(), 9);
    let cfg = AnalysisConfig::default();
    let pfs = aggregate(&traces, &cfg);
    let ci = bootstrap_bytes_ci(
        &pfs,
        &scenario.registry,
        &cfg,
        19,
        Metric::Bw,
        Dir::Download,
        None,
        0.95,
        200,
        9,
    )
    .expect("BW measurable");
    // The BW finding must be significant at the probe level, not an
    // artifact of a few lucky vantage points.
    assert!(ci.lo > 80.0, "CI [{:.1}, {:.1}]", ci.lo, ci.hi);
    assert!(ci.excludes(50.0));
    // HOP must NOT be significant once probes are excluded.
    let w = traces.probe_set();
    let hop = bootstrap_bytes_ci(
        &pfs,
        &scenario.registry,
        &cfg,
        19,
        Metric::Hop,
        Dir::Download,
        Some(&w),
        0.95,
        200,
        9,
    )
    .expect("HOP measurable");
    assert!(
        !hop.excludes(50.0) || (hop.lo - 50.0).abs() < 15.0,
        "HOP CI [{:.1}, {:.1}] claims a path-length preference",
        hop.lo,
        hop.hi
    );
}

//! Acceptance tests for the paper's findings (DESIGN.md §"shape
//! acceptance criteria"): the analysis applied to the simulated testbed
//! must reproduce the *conclusions* of Tables II–IV and Figs. 1–2.

mod common;

use common::{output, suite};

// ---------- Table IV: BW awareness (§IV-A) ----------

#[test]
fn every_app_prefers_high_bandwidth_peers() {
    for out in suite() {
        let bw = out.analysis.preference("BW").unwrap();
        // "high-bandwidth peers represent 83–86% of the contributors,
        // from which 96–98% of the traffic is received"
        assert!(
            bw.download_all.peers_pct > 75.0,
            "{}: P_D = {:.1}%",
            out.app,
            bw.download_all.peers_pct
        );
        assert!(
            bw.download_all.bytes_pct > 90.0,
            "{}: B_D = {:.1}%",
            out.app,
            bw.download_all.bytes_pct
        );
    }
}

#[test]
fn bw_preference_survives_excluding_probes() {
    // "The NAPA-WINE peers add little bias, so that percentages do not
    // change much by excluding them."
    for out in suite() {
        let bw = out.analysis.preference("BW").unwrap();
        let delta = (bw.download_all.bytes_pct - bw.download_nonw.bytes_pct).abs();
        assert!(delta < 10.0, "{}: Δ = {:.1}", out.app, delta);
    }
}

#[test]
fn bw_is_download_only() {
    for out in suite() {
        let bw = out.analysis.preference("BW").unwrap();
        assert!(!bw.upload_all.is_measurable());
        assert!(!bw.upload_nonw.is_measurable());
    }
}

// ---------- Table IV: AS / CC awareness (§IV-B) ----------

#[test]
fn tvants_is_strongly_as_aware() {
    let a = output("TVAnts").analysis.preference("AS").unwrap();
    // Paper: B_D = 32.0%, P_D = 13.5%.
    assert!(
        a.download_all.bytes_pct > 15.0,
        "B_D = {:.1}%",
        a.download_all.bytes_pct
    );
    assert!(
        a.download_all.bytes_pct > 1.5 * a.download_all.peers_pct,
        "bytes must concentrate beyond peer share"
    );
    // Upload side too (paper: B_U = 30.1%).
    assert!(a.upload_all.bytes_pct > 10.0);
}

#[test]
fn pplive_as_awareness_is_byte_heavy() {
    let a = output("PPLive").analysis.preference("AS").unwrap();
    // Paper: B_D = 12.8% from P_D = 1.3% of peers — a large B/P ratio.
    assert!(
        a.download_all.bytes_pct > 3.0 * a.download_all.peers_pct,
        "B/P = {:.1}/{:.1}",
        a.download_all.bytes_pct,
        a.download_all.peers_pct
    );
}

#[test]
fn sopcast_is_as_unaware() {
    let a = output("SopCast").analysis.preference("AS").unwrap();
    // "SopCast is unaware of AS location. Indeed, P_D is almost equal
    // to B_D" — and both are small.
    assert!(
        a.download_all.bytes_pct < 8.0,
        "B_D = {:.1}%",
        a.download_all.bytes_pct
    );
    assert!(
        a.download_nonw.bytes_pct < 2.0,
        "B'_D = {:.1}%",
        a.download_nonw.bytes_pct
    );
}

#[test]
fn as_awareness_ordering_matches_paper() {
    let t = output("TVAnts").analysis.preference("AS").unwrap();
    let p = output("PPLive").analysis.preference("AS").unwrap();
    let s = output("SopCast").analysis.preference("AS").unwrap();
    assert!(t.download_all.bytes_pct > p.download_all.bytes_pct);
    assert!(p.download_all.bytes_pct > s.download_all.bytes_pct);
}

#[test]
fn country_preference_is_explained_by_as() {
    // "Since two peers in the same AS are also located within the same
    // Country, we can state that no country preference is shown" — CC
    // tracks AS within a few points for every app.
    for out in suite() {
        let a = out.analysis.preference("AS").unwrap();
        let c = out.analysis.preference("CC").unwrap();
        let delta = c.download_all.bytes_pct - a.download_all.bytes_pct;
        assert!(
            (0.0..15.0).contains(&delta),
            "{}: CC B_D {:.1} vs AS B_D {:.1}",
            out.app,
            c.download_all.bytes_pct,
            a.download_all.bytes_pct
        );
    }
}

// ---------- Table IV: NET awareness (§IV-C) ----------

#[test]
fn net_preference_exists_only_where_as_preference_does() {
    let t = output("TVAnts").analysis.preference("NET").unwrap();
    let p = output("PPLive").analysis.preference("NET").unwrap();
    let s = output("SopCast").analysis.preference("NET").unwrap();
    assert!(t.download_all.bytes_pct > 5.0, "TVAnts NET {:.1}", t.download_all.bytes_pct);
    assert!(p.download_all.bytes_pct > 2.0, "PPLive NET {:.1}", p.download_all.bytes_pct);
    assert!(s.download_all.bytes_pct < 5.0, "SopCast NET {:.1}", s.download_all.bytes_pct);
}

#[test]
fn net_outside_probes_is_empty_or_negligible() {
    // "The set of peers in the same subnet includes only NAPA-WINE
    // peers" — non-probe same-subnet traffic must be ~0.
    for out in suite() {
        let n = out.analysis.preference("NET").unwrap();
        if n.download_nonw.is_measurable() {
            assert!(
                n.download_nonw.bytes_pct < 5.0,
                "{}: non-NAPA NET B'_D = {:.1}%",
                out.app,
                n.download_nonw.bytes_pct
            );
        }
    }
}

// ---------- Table IV: HOP awareness (§IV-D) ----------

#[test]
fn no_hop_awareness_once_probes_are_excluded() {
    // "no particular evidence of preference toward shorter paths […]
    // looking at the non-NAPA-WINE peers, almost no difference emerges"
    for out in suite() {
        let h = out.analysis.preference("HOP").unwrap();
        assert!(
            (25.0..70.0).contains(&h.download_nonw.bytes_pct),
            "{}: B'_D HOP = {:.1}%",
            out.app,
            h.download_nonw.bytes_pct
        );
    }
}

#[test]
fn self_bias_inflates_hop_preference_for_tvants() {
    // "Considering the complete set P, the self-induced bias of
    // NAPA-WINE peers shows up, artificially highlighting a HOP
    // preference."
    let h = output("TVAnts").analysis.preference("HOP").unwrap();
    assert!(
        h.download_all.bytes_pct > h.download_nonw.bytes_pct + 10.0,
        "all {:.1} vs non-NAPA {:.1}",
        h.download_all.bytes_pct,
        h.download_nonw.bytes_pct
    );
}

// ---------- Table III (§III-C) ----------

#[test]
fn self_bias_ordering_matches_paper() {
    // Paper contributors bytes%: TVAnts 56.3 ≫ SopCast 17.7 > PPLive 3.5.
    let t = output("TVAnts").analysis.selfbias;
    let s = output("SopCast").analysis.selfbias;
    let p = output("PPLive").analysis.selfbias;
    assert!(t.contrib_bytes_pct > s.contrib_bytes_pct);
    assert!(s.contrib_bytes_pct > p.contrib_bytes_pct);
    assert!(t.contrib_bytes_pct > 30.0, "TVAnts {:.1}", t.contrib_bytes_pct);
    assert!(p.contrib_bytes_pct < 15.0, "PPLive {:.1}", p.contrib_bytes_pct);
}

// ---------- Table II (§II) ----------

#[test]
fn stream_rx_rates_are_near_nominal() {
    // All apps deliver the 384 kb/s stream; RX totals sit between the
    // nominal rate and ~1.5× (signalling overhead).
    for out in suite() {
        let rx = out.analysis.summary.rx_kbps.mean;
        assert!(
            (380.0..700.0).contains(&rx),
            "{}: RX mean {:.0} kb/s",
            out.app,
            rx
        );
    }
}

#[test]
fn pplive_is_the_upload_amplifier() {
    // Paper: PPLive TX mean 3 384 kb/s vs SopCast 293 / TVAnts 464.
    let p = output("PPLive").analysis.summary.tx_kbps.mean;
    let s = output("SopCast").analysis.summary.tx_kbps.mean;
    let t = output("TVAnts").analysis.summary.tx_kbps.mean;
    assert!(p > 3.0 * s, "PPLive {p:.0} vs SopCast {s:.0}");
    assert!(p > 2.0 * t, "PPLive {p:.0} vs TVAnts {t:.0}");
}

#[test]
fn contacted_peer_counts_order_like_the_paper() {
    // PPLive contacts orders of magnitude more peers than the others.
    let p = output("PPLive").analysis.summary.peers.mean;
    let s = output("SopCast").analysis.summary.peers.mean;
    let t = output("TVAnts").analysis.summary.peers.mean;
    assert!(p > 5.0 * s, "PPLive {p:.0} vs SopCast {s:.0}");
    assert!(s > t, "SopCast {s:.0} vs TVAnts {t:.0}");
}

#[test]
fn contributors_are_a_small_subset_of_contacts() {
    for out in suite() {
        let sum = &out.analysis.summary;
        assert!(sum.contrib_rx.mean < sum.peers.mean);
        assert!(sum.contrib_rx.mean > 1.0, "{}: no contributors?", out.app);
    }
}

// ---------- Fig. 1 (§II) ----------

#[test]
fn china_dominates_peers_and_bytes() {
    for out in suite() {
        let cn = out
            .analysis
            .geo
            .rows
            .iter()
            .find(|r| r.label == "CN")
            .unwrap();
        // At CI scale the TVAnts overlay shrinks to a couple dozen
        // externals, so the 46 probes dominate the *peer* census; the
        // CN-majority peer check is only meaningful for overlays that
        // still dwarf the probe set.
        if out.analysis.geo.total_peers > 500 {
            assert!(cn.peers_pct > 50.0, "{}: CN peers {:.1}%", out.app, cn.peers_pct);
        } else {
            assert!(cn.peers_pct > 15.0, "{}: CN peers {:.1}%", out.app, cn.peers_pct);
        }
        assert!(cn.rx_pct > 15.0, "{}: CN RX {:.1}%", out.app, cn.rx_pct);
    }
}

#[test]
fn observed_population_ordering() {
    // Fig. 1 totals: PPLive 181 729 ≫ SopCast 4 057 > TVAnts 550 (scaled).
    let p = output("PPLive").analysis.geo.total_peers;
    let s = output("SopCast").analysis.geo.total_peers;
    let t = output("TVAnts").analysis.geo.total_peers;
    assert!(p > 4 * s, "PPLive {p} vs SopCast {s}");
    assert!(s > t, "SopCast {s} vs TVAnts {t}");
}

#[test]
fn european_bytes_exceed_european_peer_share() {
    // "a non negligible fraction of the data is exchanged within
    // European countries: this hints to the existence of a bias".
    let g = &output("TVAnts").analysis.geo;
    let eu_peers: f64 = g
        .rows
        .iter()
        .filter(|r| ["HU", "IT", "FR", "PL"].contains(&r.label.as_str()))
        .map(|r| r.peers_pct)
        .sum();
    let eu_rx: f64 = g
        .rows
        .iter()
        .filter(|r| ["HU", "IT", "FR", "PL"].contains(&r.label.as_str()))
        .map(|r| r.rx_pct)
        .sum();
    assert!(
        eu_rx > 0.5 * eu_peers,
        "EU RX share {eu_rx:.1}% vs peer share {eu_peers:.1}%"
    );
}

// ---------- Fig. 2 (§IV-B) ----------

#[test]
fn tvants_r_ratio_shows_as_locality() {
    let r = output("TVAnts").analysis.asmatrix.r_ratio;
    assert!(r > 1.2, "TVAnts R = {r:.2}");
}

#[test]
fn r_ratio_ordering() {
    let t = output("TVAnts").analysis.asmatrix.r_ratio;
    let s = output("SopCast").analysis.asmatrix.r_ratio;
    assert!(
        t > s,
        "location-aware TVAnts (R={t:.2}) must beat location-blind SopCast (R={s:.2})"
    );
}

// ---------- ground truth sanity ----------

#[test]
fn streams_stay_healthy() {
    for out in suite() {
        assert!(
            out.report.continuity() > 0.9,
            "{}: continuity {:.3}",
            out.app,
            out.report.continuity()
        );
    }
}

#[test]
fn hop_threshold_is_paper_fixed() {
    for out in suite() {
        assert_eq!(out.analysis.hop_threshold, 19);
    }
}

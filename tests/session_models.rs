//! Statistical property tests for the empirical session models, plus
//! the structural guarantee that a no-op model leaves runs
//! byte-identical to model-free churn.
//!
//! The draw-level laws are checked against their analytic forms
//! (Pareto CCDF, the diurnal harmonic-mean stretch); the zapping
//! renewal is checked at the swarm level, where it must preserve the
//! churn process's population bounds while visibly shortening sessions.

use netaware::faults::{Diurnal, SessionLaw, SessionModel, Zapping};
use netaware::sim::DetRng;
use netaware::testbed::{run_experiment, ExperimentOptions};
use netaware::trace::write_trace;
use netaware::{AppProfile, ChurnPlan, FaultPlan};

fn rng() -> DetRng {
    DetRng::stream(0xABCD, "fault.churn")
}

#[test]
fn pareto_ccdf_matches_analytic_tail() {
    let shape = 2.0;
    let mean_us = 10_000_000u64;
    let model = SessionModel {
        law: Some(SessionLaw::Pareto(shape)),
        ..Default::default()
    };
    // Mean-matched scale: x_m = mean·(α−1)/α.
    let xm = mean_us as f64 * (shape - 1.0) / shape;
    let n = 200_000usize;
    let mut r = rng();
    let samples: Vec<u64> = (0..n).map(|_| model.draw_session_us(&mut r, mean_us)).collect();
    for factor in [1.5f64, 3.0, 8.0] {
        let x = xm * factor;
        let analytic = (xm / x).powf(shape);
        let empirical =
            samples.iter().filter(|&&s| s as f64 > x).count() as f64 / n as f64;
        assert!(
            (empirical - analytic).abs() < 0.01,
            "CCDF at {factor}·x_m: empirical {empirical:.4} vs analytic {analytic:.4}"
        );
    }
    // Nothing below the scale parameter: Pareto support is [x_m, ∞).
    assert!(samples.iter().all(|&s| s as f64 >= xm.floor()));
}

#[test]
fn diurnal_offline_stretch_matches_harmonic_mean() {
    // Offline periods are Exp(mean / intensity(t)). Averaged over a full
    // period, the expected offline length is mean·E[1/(1+a·sin θ)]
    // = mean/√(1−a²) — the harmonic-mean stretch of the envelope.
    let amplitude = 0.6f64;
    let period_us = 1_000_000u64;
    let model = SessionModel {
        diurnal: Some(Diurnal {
            period_us,
            amplitude,
            phase_us: 0,
        }),
        ..Default::default()
    };
    let mean_us = 5_000_000u64;
    let mut r = rng();
    let phases = 2_000u64;
    let per_phase = 50;
    let mut sum: u128 = 0;
    for k in 0..phases {
        let now = k * period_us / phases;
        for _ in 0..per_phase {
            sum += (model.rearrive_at_us(&mut r, now, mean_us) - now) as u128;
        }
    }
    let emp = sum as f64 / (phases * per_phase) as f64;
    let expect = mean_us as f64 / (1.0 - amplitude * amplitude).sqrt();
    let rel = (emp - expect).abs() / expect;
    assert!(
        rel < 0.05,
        "diurnal offline mean {emp:.0} vs analytic {expect:.0} (drift {rel:.3})"
    );
}

fn churn_opts(session: Option<SessionModel>) -> ExperimentOptions {
    ExperimentOptions {
        seed: 31,
        scale: 0.02,
        duration_us: 15_000_000,
        faults: FaultPlan {
            churn: Some(ChurnPlan::preset()),
            session,
            ..FaultPlan::none()
        },
        keep_traces: true,
        ..Default::default()
    }
}

#[test]
fn zapping_renewal_preserves_population_bounds() {
    let zapping = SessionModel {
        zapping: Some(Zapping {
            prob: 0.8,
            visit_mean_us: 2_000_000,
        }),
        ..Default::default()
    };
    let base = run_experiment(AppProfile::pplive(), &churn_opts(None));
    let zap = run_experiment(AppProfile::pplive(), &churn_opts(Some(zapping)));
    for out in [&base, &zap] {
        // Renewal bound: every re-arrival follows a departure (nobody
        // starts offline in the preset), and the stream survives.
        assert!(out.report.peers_departed > 0, "churn never fired");
        assert!(
            out.report.peers_arrived <= out.report.peers_departed,
            "more arrivals ({}) than departures ({})",
            out.report.peers_arrived,
            out.report.peers_departed
        );
        assert!(out.report.continuity() > 0.3, "swarm starved under churn");
    }
    // Zap visits are far shorter than the 45 s mean session, so the
    // zapping mix must turn the population over faster.
    assert!(
        zap.report.peers_departed > base.report.peers_departed,
        "zapping ({}) did not shorten sessions vs baseline ({})",
        zap.report.peers_departed,
        base.report.peers_departed
    );
}

#[test]
fn noop_session_model_is_byte_identical_to_model_free_churn() {
    let plain = run_experiment(AppProfile::pplive(), &churn_opts(None));
    let modeled = run_experiment(
        AppProfile::pplive(),
        &churn_opts(Some(SessionModel::default())),
    );
    let corpus = |out: &netaware::testbed::ExperimentOutput| {
        let mut bytes = Vec::new();
        for t in &out.traces.as_ref().expect("keep_traces").traces {
            write_trace(t, &mut bytes).expect("in-memory write");
        }
        bytes
    };
    assert_eq!(
        corpus(&plain),
        corpus(&modeled),
        "default session model perturbed the trace bytes"
    );
    assert_eq!(plain.analysis.to_json(), modeled.analysis.to_json());
    assert_eq!(
        plain.report.peers_departed,
        modeled.report.peers_departed
    );
}

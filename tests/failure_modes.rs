//! Failure injection: corrupted inputs, hostile TTLs, exotic populations
//! — the analysis must degrade gracefully, never panic or fabricate.

use netaware::analysis::flows::aggregate;
use netaware::analysis::{analyze, analyze_corpus, AnalysisConfig};
use netaware::net::{GeoRegistryBuilder, Ip};
use netaware::trace::{
    read_trace, write_trace, CorpusStream, PacketRecord, PayloadKind, ProbeTrace, RecordStream,
    TraceError, TraceSet,
};
use std::collections::BTreeSet;

fn video_rec(ts: u64, src: Ip, dst: Ip, ttl: u8) -> PacketRecord {
    PacketRecord {
        ts_us: ts,
        src,
        dst,
        sport: 1,
        dport: 2,
        size: 1250,
        ttl,
        kind: PayloadKind::Video,
    }
}

#[test]
fn truncated_file_reports_counts() {
    let probe = Ip::from_octets(10, 0, 0, 1);
    let mut t = ProbeTrace::new(probe);
    for i in 0..100 {
        t.push(video_rec(i, Ip::from_octets(58, 0, 0, 1), probe, 110));
    }
    let mut buf = Vec::new();
    write_trace(&t, &mut buf).unwrap();
    for cut in [0, 10, 17, 18, 19, buf.len() - 1] {
        let sliced = &buf[..cut];
        let err = read_trace(&mut &sliced[..]).unwrap_err();
        match err {
            TraceError::Io(_) | TraceError::Truncated { .. } => {}
            other => panic!("cut at {cut}: unexpected {other:?}"),
        }
    }
}

#[test]
fn non_windows_ttls_drop_out_of_hop_metric_only() {
    // A remote running a unix stack (TTL 255 initial → arrives above
    // 128): HOP must skip it, BW/AS/NET must still work.
    let probe = Ip::from_octets(10, 0, 0, 1);
    let weird = Ip::from_octets(58, 0, 0, 9);
    let mut t = ProbeTrace::new(probe);
    for c in 0..5u64 {
        for k in 0..20u64 {
            t.push(video_rec(c * 500_000 + k * 100, weird, probe, 240));
        }
    }
    let mut set = TraceSet::new("X", 10_000_000);
    set.add(t);
    set.finalize();
    let reg = GeoRegistryBuilder::new().build();
    let a = analyze(&set, &reg, &AnalysisConfig::default(), &BTreeSet::new());
    assert!(!a.preference("HOP").unwrap().download_all.is_measurable());
    assert!(a.preference("BW").unwrap().download_all.is_measurable());
    assert!(a.preference("NET").unwrap().download_all.is_measurable());
}

#[test]
fn unresolvable_addresses_count_as_remote() {
    // Empty registry: AS/CC lookups all fail; the framework must treat
    // every pair as "different AS/CC", not crash or divide by zero.
    let probe = Ip::from_octets(10, 0, 0, 1);
    let ext = Ip::from_octets(58, 0, 0, 9);
    let mut t = ProbeTrace::new(probe);
    for c in 0..3u64 {
        for k in 0..20u64 {
            t.push(video_rec(c * 500_000 + k * 100, ext, probe, 110));
        }
    }
    let mut set = TraceSet::new("X", 10_000_000);
    set.add(t);
    set.finalize();
    let reg = GeoRegistryBuilder::new().build();
    let a = analyze(&set, &reg, &AnalysisConfig::default(), &BTreeSet::new());
    let as_pref = a.preference("AS").unwrap().download_all;
    assert_eq!(as_pref.peers_pct, 0.0);
    assert_eq!(as_pref.bytes_pct, 0.0);
    // Fig. 1: everything lands in the '*' bin.
    let star = a.geo.rows.iter().find(|r| r.label == "*").unwrap();
    assert_eq!(star.peers_pct, 100.0);
}

#[test]
fn duplicate_timestamps_are_tolerated() {
    // Batched capture can stamp several packets with the same µs; min
    // IPG then legitimately reads 0 (→ high-bw), and nothing panics.
    let probe = Ip::from_octets(10, 0, 0, 1);
    let ext = Ip::from_octets(58, 0, 0, 9);
    let mut t = ProbeTrace::new(probe);
    for _ in 0..30 {
        t.push(video_rec(1_000, ext, probe, 110));
    }
    let mut set = TraceSet::new("X", 10_000_000);
    set.add(t);
    set.finalize();
    let cfg = AnalysisConfig::default();
    let flows = aggregate(&set, &cfg);
    assert_eq!(flows[0].flows[&ext].min_ipg_us, Some(0));
}

#[test]
fn signaling_only_remotes_never_become_contributors() {
    let probe = Ip::from_octets(10, 0, 0, 1);
    let mut t = ProbeTrace::new(probe);
    // Thousands of small packets from one chatty remote.
    let chatty = Ip::from_octets(58, 0, 0, 7);
    for i in 0..5_000u64 {
        t.push(PacketRecord {
            ts_us: i * 100,
            src: chatty,
            dst: probe,
            sport: 1,
            dport: 2,
            size: 148,
            ttl: 110,
            kind: PayloadKind::Signaling,
        });
    }
    let mut set = TraceSet::new("X", 10_000_000);
    set.add(t);
    set.finalize();
    let reg = GeoRegistryBuilder::new().build();
    let a = analyze(&set, &reg, &AnalysisConfig::default(), &BTreeSet::new());
    assert_eq!(a.summary.contrib_rx.max, 0.0);
    assert_eq!(a.summary.peers.max, 1.0); // still an observed peer
}

#[test]
fn single_packet_flows_are_harmless() {
    let probe = Ip::from_octets(10, 0, 0, 1);
    let mut t = ProbeTrace::new(probe);
    for i in 0..100u32 {
        t.push(video_rec(i as u64, Ip(0x3A00_0000 + i), probe, 110));
    }
    let mut set = TraceSet::new("X", 1_000_000);
    set.add(t);
    set.finalize();
    let reg = GeoRegistryBuilder::new().build();
    let a = analyze(&set, &reg, &AnalysisConfig::default(), &BTreeSet::new());
    // 100 observed peers, none a contributor, BW unmeasurable for all.
    assert_eq!(a.geo.total_peers, 100);
    assert!(!a.preference("BW").unwrap().download_all.is_measurable());
}

#[test]
fn zero_duration_experiment() {
    use netaware::testbed::{run_experiment, ExperimentOptions};
    let opts = ExperimentOptions {
        seed: 1,
        scale: 0.01,
        duration_us: 1, // nothing can happen
        ..Default::default()
    };
    let out = run_experiment(netaware::AppProfile::tvants(), &opts);
    // No video can move in 1 µs; only the t=0 tracker-bootstrap
    // handshakes appear in the traces.
    assert_eq!(out.report.chunks_delivered, 0);
    assert_eq!(out.report.chunks_served_by_externals, 0);
    assert_eq!(out.summary_contrib_max(), 0.0);
}

/// Helper for the zero-duration test: largest contributor count.
trait ContribMax {
    fn summary_contrib_max(&self) -> f64;
}
impl ContribMax for netaware::testbed::ExperimentOutput {
    fn summary_contrib_max(&self) -> f64 {
        self.analysis
            .summary
            .contrib_rx
            .max
            .max(self.analysis.summary.contrib_tx.max)
    }
}

// ---- Streaming reads: the error must carry progress, and the stream
// ---- must fuse after it ------------------------------------------------

fn full_trace_bytes(n: u64) -> Vec<u8> {
    let probe = Ip::from_octets(10, 0, 0, 1);
    let mut t = ProbeTrace::new(probe);
    for i in 0..n {
        t.push(video_rec(i * 10, Ip::from_octets(58, 0, 0, 1), probe, 110));
    }
    let mut buf = Vec::new();
    write_trace(&t, &mut buf).unwrap();
    buf
}

#[test]
fn streaming_truncation_reports_records_already_yielded() {
    const WIRE: usize = PacketRecord::WIRE_SIZE;
    let buf = full_trace_bytes(50);
    for (cut, want_got) in [
        (18, 0u64),                 // header only
        (18 + WIRE - 1, 0),         // first record cut short
        (18 + 7 * WIRE + 5, 7),     // mid-stream cut
        (buf.len() - 1, 49),        // last record one byte short
    ] {
        let sliced = &buf[..cut];
        let mut stream = RecordStream::new(sliced).unwrap();
        let mut yielded = 0u64;
        let err = loop {
            match stream.next() {
                Some(Ok(_)) => yielded += 1,
                Some(Err(e)) => break e,
                None => panic!("cut at {cut}: stream ended without an error"),
            }
        };
        match err {
            TraceError::Truncated { expected, got } => {
                assert_eq!(expected, 50, "cut at {cut}");
                assert_eq!(got, want_got, "cut at {cut}");
                assert_eq!(got, yielded, "cut at {cut}: error disagrees with iteration");
            }
            other => panic!("cut at {cut}: unexpected {other:?}"),
        }
        // The stream fuses: no records are invented after the error.
        assert!(stream.next().is_none(), "cut at {cut}: stream not fused");
    }
}

#[test]
fn streaming_corrupt_record_carries_its_index() {
    const WIRE: usize = PacketRecord::WIRE_SIZE;
    let mut buf = full_trace_bytes(10);
    // Stamp an invalid payload-kind byte into record 3 (last byte of the
    // 24-byte record encoding).
    buf[18 + 3 * WIRE + (WIRE - 1)] = 0xFF;
    let stream = RecordStream::new(&buf[..]).unwrap();
    let results: Vec<_> = stream.collect();
    assert_eq!(results.len(), 4, "three good records, then the error, then fused");
    assert!(results[..3].iter().all(|r| r.is_ok()));
    match &results[3] {
        Err(TraceError::CorruptRecord(idx)) => assert_eq!(*idx, 3),
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn streaming_rejects_out_of_order_records() {
    // The on-disk format is a sorted capture; a streaming reader cannot
    // re-sort, so a timestamp regression must surface as an error rather
    // than silently corrupting windowed passes downstream.
    let probe = Ip::from_octets(10, 0, 0, 1);
    let mut t = ProbeTrace::new(probe);
    t.push(video_rec(5_000, Ip::from_octets(58, 0, 0, 1), probe, 110));
    t.push(video_rec(3_000, Ip::from_octets(58, 0, 0, 1), probe, 110));
    // Deliberately NOT finalized: write the records out of order.
    let mut buf = Vec::new();
    write_trace(&t, &mut buf).unwrap();
    let stream = RecordStream::new(&buf[..]).unwrap();
    let results: Vec<_> = stream.collect();
    assert!(results[0].is_ok());
    match &results[1] {
        Err(TraceError::OutOfOrder(idx)) => assert_eq!(*idx, 1),
        other => panic!("unexpected {other:?}"),
    }
    assert_eq!(results.len(), 2, "stream must fuse after the ordering error");
}

#[test]
fn corrupt_corpus_surfaces_errors_not_partial_analyses() {
    let dir = std::env::temp_dir().join(format!("netaware_failure_corpus_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let probe = Ip::from_octets(10, 0, 0, 1);
    let mut t = ProbeTrace::new(probe);
    for i in 0..60u64 {
        t.push(video_rec(i * 1_000, Ip::from_octets(58, 0, 0, 1), probe, 110));
    }
    let mut set = TraceSet::new("X", 1_000_000);
    set.add(t);
    set.finalize();
    set.write_dir(&dir).unwrap();
    let reg = GeoRegistryBuilder::new().build();
    let cfg = AnalysisConfig::default();

    // Unparsable manifest → BadManifest, naming the problem.
    let manifest_path = dir.join("manifest.json");
    let good_manifest = std::fs::read(&manifest_path).unwrap();
    std::fs::write(&manifest_path, b"{ not json").unwrap();
    match CorpusStream::open(&dir) {
        Err(TraceError::BadManifest(_)) => {}
        Err(other) => panic!("unexpected {other:?}"),
        Ok(_) => panic!("garbage manifest parsed"),
    }
    std::fs::write(&manifest_path, &good_manifest).unwrap();

    // Truncated probe file → the streamed analysis refuses, it does not
    // fabricate a partial result.
    let nawt = dir.join(format!("{probe}.nawt"));
    let good_nawt = std::fs::read(&nawt).unwrap();
    std::fs::write(&nawt, &good_nawt[..good_nawt.len() - 7]).unwrap();
    match analyze_corpus(&dir, &reg, &cfg, &BTreeSet::new()) {
        Err(TraceError::Truncated { expected, got }) => {
            assert_eq!(expected, 60);
            assert_eq!(got, 59);
        }
        other => panic!("unexpected {:?}", other.map(|a| a.total_packets)),
    }
    std::fs::write(&nawt, &good_nawt).unwrap();

    // A probe file whose header names a different probe than its
    // manifest entry → BadManifest on open.
    let mut wrong = good_nawt.clone();
    wrong[6] ^= 0x01; // flip a bit inside the header's probe field
    std::fs::write(&nawt, &wrong).unwrap();
    let corpus = CorpusStream::open(&dir).unwrap();
    match corpus.open_probe(probe) {
        Err(TraceError::BadManifest(_)) => {}
        other => panic!("unexpected {:?}", other.map(|s| s.expected())),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn hostile_packet_sizes_at_the_boundary() {
    // Packets exactly at the video threshold flip sides predictably.
    let cfg = AnalysisConfig::default();
    let probe = Ip::from_octets(10, 0, 0, 1);
    let ext = Ip::from_octets(58, 0, 0, 1);
    let mut t = ProbeTrace::new(probe);
    let mk = |ts, size| PacketRecord {
        ts_us: ts,
        src: ext,
        dst: probe,
        sport: 1,
        dport: 2,
        size,
        ttl: 110,
        kind: PayloadKind::Signaling,
    };
    t.push(mk(0, cfg.video_size_threshold - 1));
    t.push(mk(1, cfg.video_size_threshold));
    let mut set = TraceSet::new("X", 1_000_000);
    set.add(t);
    set.finalize();
    let flows = aggregate(&set, &cfg);
    let f = &flows[0].flows[&ext];
    assert_eq!(f.video_pkts_rx, 1);
    assert_eq!(f.pkts_rx, 2);
}
